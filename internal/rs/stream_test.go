package rs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

func streamRoundTrip(t *testing.T, c *Code, payload []byte, chunk int, lost []int) []byte {
	t.Helper()
	writers := make([]io.Writer, c.TotalShards())
	bufs := make([]*bytes.Buffer, c.TotalShards())
	for i := range writers {
		bufs[i] = &bytes.Buffer{}
		writers[i] = bufs[i]
	}
	n, err := c.StreamEncode(bytes.NewReader(payload), writers, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("encoded %d bytes, want %d", n, len(payload))
	}
	readers := make([]io.Reader, c.TotalShards())
	for i := range readers {
		readers[i] = bytes.NewReader(bufs[i].Bytes())
	}
	for _, l := range lost {
		readers[l] = nil
	}
	var out bytes.Buffer
	if err := c.StreamDecode(&out, readers, int64(len(payload)), chunk); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestStreamRoundTripExactStripe(t *testing.T) {
	c := MustNew(4, 2)
	payload := make([]byte, 4*512*3) // 3 full stripes at chunk 512
	rand.New(rand.NewSource(1)).Read(payload)
	got := streamRoundTrip(t, c, payload, 512, nil)
	if !bytes.Equal(got, payload) {
		t.Fatal("full-stripe stream round trip failed")
	}
}

func TestStreamRoundTripWithPadding(t *testing.T) {
	c := MustNew(6, 3)
	payload := make([]byte, 10_000) // not a stripe multiple
	rand.New(rand.NewSource(2)).Read(payload)
	got := streamRoundTrip(t, c, payload, 1024, nil)
	if !bytes.Equal(got, payload) {
		t.Fatal("padded stream round trip failed")
	}
}

func TestStreamDecodeWithErasures(t *testing.T) {
	c := MustNew(6, 3)
	payload := make([]byte, 50_000)
	rand.New(rand.NewSource(3)).Read(payload)
	got := streamRoundTrip(t, c, payload, 2048, []int{0, 3, 7}) // 2 data + 1 parity lost
	if !bytes.Equal(got, payload) {
		t.Fatal("stream reconstruction with erasures failed")
	}
}

func TestStreamTooManyErasures(t *testing.T) {
	c := MustNew(4, 2)
	readers := make([]io.Reader, 6)
	readers[0] = bytes.NewReader(nil)
	readers[1] = bytes.NewReader(nil)
	readers[2] = bytes.NewReader(nil)
	var out bytes.Buffer
	if err := c.StreamDecode(&out, readers, 100, 512); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestStreamShortShard(t *testing.T) {
	c := MustNew(4, 2)
	readers := make([]io.Reader, 6)
	for i := range readers {
		readers[i] = bytes.NewReader([]byte{1, 2, 3}) // shorter than a chunk
	}
	var out bytes.Buffer
	if err := c.StreamDecode(&out, readers, 4096, 512); !errors.Is(err, ErrShortShard) {
		t.Fatalf("err = %v, want ErrShortShard", err)
	}
}

func TestStreamValidation(t *testing.T) {
	c := MustNew(4, 2)
	if _, err := c.StreamEncode(bytes.NewReader([]byte{1}), make([]io.Writer, 2), 512); !errors.Is(err, ErrShardCount) {
		t.Fatalf("wrong writer count: %v", err)
	}
	ws := make([]io.Writer, 6)
	for i := range ws {
		ws[i] = &bytes.Buffer{}
	}
	if _, err := c.StreamEncode(bytes.NewReader([]byte{1}), ws, 0); err == nil {
		t.Fatal("zero chunk size must fail")
	}
	if err := c.StreamDecode(&bytes.Buffer{}, make([]io.Reader, 1), 1, 512); !errors.Is(err, ErrShardCount) {
		t.Fatal("wrong reader count must fail")
	}
	if err := c.StreamDecode(&bytes.Buffer{}, make([]io.Reader, 6), 1, 0); err == nil {
		t.Fatal("zero chunk size decode must fail")
	}
}

func TestStreamEmptyInput(t *testing.T) {
	c := MustNew(4, 2)
	ws := make([]io.Writer, 6)
	bufs := make([]*bytes.Buffer, 6)
	for i := range ws {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	n, err := c.StreamEncode(bytes.NewReader(nil), ws, 512)
	if err != nil || n != 0 {
		t.Fatalf("empty encode: n=%d err=%v", n, err)
	}
	for i, b := range bufs {
		if b.Len() != 0 {
			t.Fatalf("shard %d received %d bytes for empty input", i, b.Len())
		}
	}
}

func TestStreamQuickProperty(t *testing.T) {
	c := MustNew(5, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, 1+rng.Intn(20_000))
		rng.Read(payload)
		chunk := 256 << rng.Intn(3)
		var lost []int
		for _, l := range rng.Perm(7)[:rng.Intn(3)] {
			lost = append(lost, l)
		}
		got := streamRoundTrip(t, c, payload, chunk, lost)
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestStreamEncodePaddedTail checks the tail-only zeroing: a final partial
// stripe encoded through the (stale) pooled buffers must produce exactly
// the same shard bytes as a fresh encode of the zero-padded payload.
func TestStreamEncodePaddedTail(t *testing.T) {
	c := MustNew(4, 2)
	const chunk = 512
	// First stream a large payload to dirty the pooled buffers.
	dirty := make([]byte, 4*chunk*3)
	rand.New(rand.NewSource(31)).Read(dirty)
	ws := make([]io.Writer, 6)
	for i := range ws {
		ws[i] = io.Discard
	}
	if _, err := c.StreamEncode(bytes.NewReader(dirty), ws, chunk); err != nil {
		t.Fatal(err)
	}
	// Now encode a payload ending mid-chunk; the padding must read as zeros.
	payload := make([]byte, chunk+100)
	rand.New(rand.NewSource(32)).Read(payload)
	bufs := make([]*bytes.Buffer, 6)
	for i := range ws {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	if _, err := c.StreamEncode(bytes.NewReader(payload), ws, chunk); err != nil {
		t.Fatal(err)
	}
	// Reference: block-encode the explicitly zero-padded stripe.
	want := make([][]byte, 6)
	for i := range want {
		want[i] = make([]byte, chunk)
	}
	copy(want[0], payload[:chunk])
	copy(want[1], payload[chunk:])
	if err := c.Encode(want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(bufs[i].Bytes(), want[i]) {
			t.Fatalf("shard %d: pooled-buffer stream encode differs from zero-padded block encode", i)
		}
	}
}

// TestStreamEncodeSteadyStateAllocs is the allocation regression gate:
// encoding more stripes must not allocate more — the per-call pool
// acquisition is the only allocating step, so allocations per stripe are
// zero in steady state.
func TestStreamEncodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under -race; alloc counts are not stable")
	}
	c := MustNew(6, 3)
	const chunk = 4096
	ws := make([]io.Writer, 9)
	for i := range ws {
		ws[i] = io.Discard
	}
	run := func(stripes int) float64 {
		payload := make([]byte, 6*chunk*stripes)
		rand.New(rand.NewSource(int64(stripes))).Read(payload)
		r := bytes.NewReader(payload)
		return testing.AllocsPerRun(5, func() {
			r.Reset(payload)
			if _, err := c.StreamEncode(r, ws, chunk); err != nil {
				t.Fatal(err)
			}
		})
	}
	run(1) // warm the pool
	few, many := run(4), run(64)
	if many > few {
		t.Fatalf("allocations grow with stripe count: %v for 4 stripes, %v for 64 — want 0 allocs/stripe",
			few, many)
	}
}

// TestConcurrentSteadyStateAllocs extends the allocation gate to the
// WithConcurrency codec (the open ROADMAP item): with the runJobs task
// list pooled, carry-mode clusters running CodecConcurrency > 1 must be 0
// allocs/stripe too, for block Encode and for streaming. Stripes are sized
// so the parallel fan-out actually engages (several spans, several
// workers).
func TestConcurrentSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under -race; alloc counts are not stable")
	}
	c := MustNew(6, 3).WithConcurrency(4)
	const chunk = 32 << 10 // big enough that runJobs fans out across spans

	t.Run("Encode", func(t *testing.T) {
		shards := randShards(t, c, chunk, 77)
		// Warm the run-state and goroutine pools.
		for i := 0; i < 4; i++ {
			if err := c.Encode(shards); err != nil {
				t.Fatal(err)
			}
		}
		if allocs := testing.AllocsPerRun(20, func() {
			if err := c.Encode(shards); err != nil {
				t.Fatal(err)
			}
		}); allocs > 0 {
			t.Fatalf("concurrent Encode allocates %v/call, want 0", allocs)
		}
	})

	t.Run("StreamEncode", func(t *testing.T) {
		ws := make([]io.Writer, 9)
		for i := range ws {
			ws[i] = io.Discard
		}
		run := func(stripes int) float64 {
			payload := make([]byte, 6*chunk*stripes)
			rand.New(rand.NewSource(int64(stripes))).Read(payload)
			r := bytes.NewReader(payload)
			return testing.AllocsPerRun(5, func() {
				r.Reset(payload)
				if _, err := c.StreamEncode(r, ws, chunk); err != nil {
					t.Fatal(err)
				}
			})
		}
		run(1) // warm the pools
		few, many := run(2), run(16)
		if many > few {
			t.Fatalf("concurrent streaming allocations grow with stripe count: %v for 2 stripes, %v for 16 — want 0 allocs/stripe",
				few, many)
		}
	})
}

// TestStreamDecodeSteadyStateAllocs: same gate for the decode side, with
// erasures — the recover matrix must be inverted once per stream, not per
// stripe, and stripe buffers must come from the pool.
func TestStreamDecodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under -race; alloc counts are not stable")
	}
	c := MustNew(4, 2)
	const chunk = 1024
	encode := func(stripes int) ([][]byte, []byte) {
		payload := make([]byte, 4*chunk*stripes)
		rand.New(rand.NewSource(int64(stripes))).Read(payload)
		bufs := make([]*bytes.Buffer, 6)
		ws := make([]io.Writer, 6)
		for i := range ws {
			bufs[i] = &bytes.Buffer{}
			ws[i] = bufs[i]
		}
		if _, err := c.StreamEncode(bytes.NewReader(payload), ws, chunk); err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, 6)
		for i := range out {
			out[i] = bufs[i].Bytes()
		}
		return out, payload
	}
	run := func(stripes int) float64 {
		shardBytes, payload := encode(stripes)
		readers := make([]io.Reader, 6)
		return testing.AllocsPerRun(5, func() {
			for i := range readers {
				readers[i] = bytes.NewReader(shardBytes[i])
			}
			readers[1] = nil // one data erasure: the recover path runs every stripe
			readers[4] = nil
			var sink countingWriter
			if err := c.StreamDecode(&sink, readers, int64(len(payload)), chunk); err != nil {
				t.Fatal(err)
			}
		})
	}
	run(1)
	few, many := run(4), run(64)
	// The per-call cost (plan, readers) is constant; allow it, but nothing
	// may scale with stripe count.
	if many > few {
		t.Fatalf("decode allocations grow with stripe count: %v for 4 stripes, %v for 64", few, many)
	}
}

// countingWriter discards bytes without allocating.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func BenchmarkStreamEncode(b *testing.B) {
	c := MustNew(6, 3)
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(9)).Read(payload)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		ws := make([]io.Writer, 9)
		for j := range ws {
			ws[j] = io.Discard
		}
		if _, err := c.StreamEncode(bytes.NewReader(payload), ws, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamEncodeSteadyState is the allocation smoke the CI runs
// with -benchtime to surface allocs/op (and allocs/stripe as a metric):
// steady-state streaming must report 0 allocs/stripe.
func BenchmarkStreamEncodeSteadyState(b *testing.B) {
	c := MustNew(6, 3)
	const chunk = 4096
	const stripes = 64
	payload := make([]byte, 6*chunk*stripes)
	rand.New(rand.NewSource(10)).Read(payload)
	ws := make([]io.Writer, 9)
	for j := range ws {
		ws[j] = io.Discard
	}
	r := bytes.NewReader(payload)
	// Warm the buffer pool so the timed loop is pure steady state.
	if _, err := c.StreamEncode(r, ws, chunk); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	var allocs0, allocs1 runtime.MemStats
	runtime.ReadMemStats(&allocs0)
	for i := 0; i < b.N; i++ {
		r.Reset(payload)
		if _, err := c.StreamEncode(r, ws, chunk); err != nil {
			b.Fatal(err)
		}
	}
	runtime.ReadMemStats(&allocs1)
	b.StopTimer()
	perStripe := float64(allocs1.Mallocs-allocs0.Mallocs) / float64(int64(b.N)*stripes)
	b.ReportMetric(perStripe, "allocs/stripe")
}
