package rs

import "sync"

// codecPools holds the recycled scratch state shared by every codec
// derived from one New call (WithConcurrency copies the Code value but
// shares the pools pointer, so stream and update scratch is reused across
// all of them). Pooling keeps the steady-state streaming path at zero
// allocations per stripe: buffers are acquired once per call, reused for
// every stripe, and returned on exit.
type codecPools struct {
	stripes sync.Pool // *stripeBufs
	deltas  sync.Pool // *[]byte (UpdateParity delta scratch)
	runs    sync.Pool // *runState (concurrent runJobs scratch)
}

// stripeBufs is one stripe's worth of shard buffers (k+m chunks). All
// buffers share a capacity, so a pooled set is resized with a reslice when
// the chunk size fits and reallocated otherwise.
type stripeBufs struct {
	shards [][]byte
}

// getStripe returns a k+m buffer set with chunk-sized shards. Contents are
// unspecified (pooled buffers hold stale bytes); callers overwrite or
// explicitly zero what they use.
func (c *Code) getStripe(chunk int) *stripeBufs {
	sb, _ := c.pools.stripes.Get().(*stripeBufs)
	if sb == nil || len(sb.shards) != c.k+c.m || cap(sb.shards[0]) < chunk {
		sb = &stripeBufs{shards: make([][]byte, c.k+c.m)}
		for i := range sb.shards {
			sb.shards[i] = make([]byte, chunk)
		}
		return sb
	}
	for i := range sb.shards {
		sb.shards[i] = sb.shards[i][:chunk]
	}
	return sb
}

// putStripe recycles a buffer set obtained from getStripe.
func (c *Code) putStripe(sb *stripeBufs) { c.pools.stripes.Put(sb) }

// getDelta returns an n-byte scratch buffer with unspecified contents.
func (c *Code) getDelta(n int) []byte {
	if p, _ := c.pools.deltas.Get().(*[]byte); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

// putDelta recycles a scratch buffer obtained from getDelta.
func (c *Code) putDelta(b []byte) { c.pools.deltas.Put(&b) }
