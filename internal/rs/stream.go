package rs

import (
	"errors"
	"fmt"
	"io"
)

// Streaming interface: encode an arbitrary-length stream into k+m shard
// streams and reconstruct it back from any k of them. This is the shape a
// downstream archival user consumes the codec through (the paper's
// warm/cold-storage motivation), complementing the block-oriented API the
// cluster uses.
//
// The steady state is zero-copy and zero-allocation per stripe, for the
// serial and the WithConcurrency codec alike: stripe buffers come from the
// codec's pool and are reused for every stripe, data chunks are encoded in
// place (no redundant zeroing — only the padded tail of the final stripe
// is cleared), the decode plan (which shard streams to read, and the
// inverted recover matrix when data shards are missing) is computed once
// per stream rather than once per stripe, and the concurrent fan-out's
// task list is pooled too (see runJobs).

// ErrShortShard is returned when shard streams end before the recorded
// payload size is recovered.
var ErrShortShard = errors.New("rs: shard stream ended early")

// StreamEncode reads src until EOF and writes k+m shard streams in
// chunkSize pieces. Returns the total payload bytes consumed. The payload
// size must be carried out of band (as object metadata would) and passed to
// StreamDecode.
func (c *Code) StreamEncode(src io.Reader, shards []io.Writer, chunkSize int) (int64, error) {
	if len(shards) != c.k+c.m {
		return 0, ErrShardCount
	}
	if chunkSize <= 0 {
		return 0, fmt.Errorf("rs: chunk size must be positive")
	}
	sb := c.getStripe(chunkSize)
	defer c.putStripe(sb)
	bufs := sb.shards
	var total int64
	for {
		// Fill one stripe: k data chunks of chunkSize bytes. io.ReadFull
		// overwrites the (pooled, stale) buffer completely on the happy
		// path, so no chunk is zeroed before reading.
		stripeBytes := 0
		for d := 0; d < c.k; d++ {
			n, err := io.ReadFull(src, bufs[d])
			stripeBytes += n
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				if stripeBytes == 0 {
					return total, nil // clean end on stripe boundary
				}
				// Final, partial stripe: zero the padded tail — the unread
				// remainder of this chunk and the never-read chunks after it.
				clear(bufs[d][n:])
				for rest := d + 1; rest < c.k; rest++ {
					clear(bufs[rest])
				}
				total += int64(stripeBytes)
				if err := c.flushStripe(bufs, shards); err != nil {
					return total, err
				}
				return total, nil
			}
			if err != nil {
				return total, err
			}
		}
		total += int64(stripeBytes)
		if err := c.flushStripe(bufs, shards); err != nil {
			return total, err
		}
	}
}

func (c *Code) flushStripe(bufs [][]byte, shards []io.Writer) error {
	if err := c.Encode(bufs); err != nil {
		return err
	}
	for i, w := range shards {
		if _, err := w.Write(bufs[i]); err != nil {
			return fmt.Errorf("rs: shard %d write: %w", i, err)
		}
	}
	return nil
}

// streamPlan is the per-stream decode state, computed once and reused for
// every stripe: which shard streams to read (the first k live ones), and —
// when data shards are missing — the inverted recover matrix plus one
// reusable row-product job per missing data shard.
type streamPlan struct {
	read []int    // shard indices read each stripe, ascending, len k
	jobs []mulJob // one fused row product per missing data shard
}

func (c *Code) planStreamDecode(shards []io.Reader, bufs [][]byte) (*streamPlan, error) {
	p := &streamPlan{}
	for i := 0; i < c.k+c.m && len(p.read) < c.k; i++ {
		if shards[i] != nil {
			p.read = append(p.read, i)
		}
	}
	missing := false
	for d := 0; d < c.k; d++ {
		if shards[d] == nil {
			missing = true
			break
		}
	}
	if !missing {
		return p, nil // every data chunk arrives directly; nothing to invert
	}
	// Recover matrix for the streams we read — derived once per stream,
	// not once per stripe.
	recover, src, err := c.recoverPlan(p.read, bufs)
	if err != nil {
		return nil, err
	}
	for d := 0; d < c.k; d++ {
		if shards[d] != nil {
			continue
		}
		p.jobs = append(p.jobs, mulJob{coeffs: recover.Row(d), srcs: src, out: bufs[d]})
	}
	return p, nil
}

// StreamDecode reconstructs size payload bytes into dst from shard streams.
// Exactly k+m readers must be passed, with nil entries for lost shards; at
// least k must be non-nil. chunkSize must match the encoding call.
func (c *Code) StreamDecode(dst io.Writer, shards []io.Reader, size int64, chunkSize int) error {
	if len(shards) != c.k+c.m {
		return ErrShardCount
	}
	if chunkSize <= 0 {
		return fmt.Errorf("rs: chunk size must be positive")
	}
	present := 0
	for _, r := range shards {
		if r != nil {
			present++
		}
	}
	if present < c.k {
		return fmt.Errorf("%w: %d shard streams, need %d", ErrTooFewShards, present, c.k)
	}
	sb := c.getStripe(chunkSize)
	defer c.putStripe(sb)
	plan, err := c.planStreamDecode(shards, sb.shards)
	if err != nil {
		return err
	}
	remaining := size
	for remaining > 0 {
		for _, i := range plan.read {
			// Read this shard's chunk of the current stripe into its pooled
			// buffer. io.ReadFull overwrites it completely, so stale bytes
			// from the previous stripe never leak.
			if _, err := io.ReadFull(shards[i], sb.shards[i]); err != nil {
				return fmt.Errorf("%w: shard %d: %v", ErrShortShard, i, err)
			}
		}
		// Rebuild the missing data chunks with the precomputed recover rows;
		// each job is one fused multi-source pass writing its chunk once.
		c.runJobs(plan.jobs, chunkSize)
		for d := 0; d < c.k && remaining > 0; d++ {
			n := int64(chunkSize)
			if n > remaining {
				n = remaining
			}
			if _, err := dst.Write(sb.shards[d][:n]); err != nil {
				return err
			}
			remaining -= n
		}
	}
	return nil
}
