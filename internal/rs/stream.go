package rs

import (
	"errors"
	"fmt"
	"io"
)

// Streaming interface: encode an arbitrary-length stream into k+m shard
// streams and reconstruct it back from any k of them. This is the shape a
// downstream archival user consumes the codec through (the paper's
// warm/cold-storage motivation), complementing the block-oriented API the
// cluster uses.

// ErrShortShard is returned when shard streams end before the recorded
// payload size is recovered.
var ErrShortShard = errors.New("rs: shard stream ended early")

// StreamEncode reads src until EOF and writes k+m shard streams in
// chunkSize pieces. Returns the total payload bytes consumed. The payload
// size must be carried out of band (as object metadata would) and passed to
// StreamDecode.
func (c *Code) StreamEncode(src io.Reader, shards []io.Writer, chunkSize int) (int64, error) {
	if len(shards) != c.k+c.m {
		return 0, ErrShardCount
	}
	if chunkSize <= 0 {
		return 0, fmt.Errorf("rs: chunk size must be positive")
	}
	bufs := make([][]byte, c.k+c.m)
	for i := range bufs {
		bufs[i] = make([]byte, chunkSize)
	}
	var total int64
	for {
		// Fill one stripe: k data chunks of chunkSize bytes.
		stripeBytes := 0
		for d := 0; d < c.k; d++ {
			clear(bufs[d])
			n, err := io.ReadFull(src, bufs[d])
			stripeBytes += n
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				if n == 0 && d == 0 && stripeBytes == 0 {
					return total, nil // clean end on stripe boundary
				}
				// Zero-pad the remaining data chunks and finish the stripe.
				for rest := d + 1; rest < c.k; rest++ {
					clear(bufs[rest])
				}
				total += int64(stripeBytes)
				if err := c.flushStripe(bufs, shards); err != nil {
					return total, err
				}
				return total, nil
			}
			if err != nil {
				return total, err
			}
		}
		total += int64(stripeBytes)
		if err := c.flushStripe(bufs, shards); err != nil {
			return total, err
		}
	}
}

func (c *Code) flushStripe(bufs [][]byte, shards []io.Writer) error {
	if err := c.Encode(bufs); err != nil {
		return err
	}
	for i, w := range shards {
		if _, err := w.Write(bufs[i]); err != nil {
			return fmt.Errorf("rs: shard %d write: %w", i, err)
		}
	}
	return nil
}

// StreamDecode reconstructs size payload bytes into dst from shard streams.
// Exactly k+m readers must be passed, with nil entries for lost shards; at
// least k must be non-nil. chunkSize must match the encoding call.
func (c *Code) StreamDecode(dst io.Writer, shards []io.Reader, size int64, chunkSize int) error {
	if len(shards) != c.k+c.m {
		return ErrShardCount
	}
	if chunkSize <= 0 {
		return fmt.Errorf("rs: chunk size must be positive")
	}
	present := 0
	for _, r := range shards {
		if r != nil {
			present++
		}
	}
	if present < c.k {
		return fmt.Errorf("%w: %d shard streams, need %d", ErrTooFewShards, present, c.k)
	}
	bufs := make([][]byte, c.k+c.m)
	remaining := size
	for remaining > 0 {
		for i := range bufs {
			bufs[i] = nil
		}
		got := 0
		for i, r := range shards {
			if r == nil {
				continue
			}
			// Read this shard's chunk of the current stripe. Lost shards
			// stay nil and are reconstructed below.
			buf := make([]byte, chunkSize)
			if _, err := io.ReadFull(r, buf); err != nil {
				return fmt.Errorf("%w: shard %d: %v", ErrShortShard, i, err)
			}
			bufs[i] = buf
			got++
			if got == c.k {
				break // k chunks suffice; skip extra reads
			}
		}
		if err := c.ReconstructData(bufs); err != nil {
			return err
		}
		for d := 0; d < c.k && remaining > 0; d++ {
			n := int64(chunkSize)
			if n > remaining {
				n = remaining
			}
			if _, err := dst.Write(bufs[d][:n]); err != nil {
				return err
			}
			remaining -= n
		}
	}
	return nil
}
