package rs

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"ecarray/internal/gf"
)

// withGFKernel runs fn under the given gf kernel, restoring the previous
// one afterwards.
func withGFKernel(t testing.TB, k gf.Kernel, fn func()) {
	t.Helper()
	prev := gf.SetKernel(k)
	defer gf.SetKernel(prev)
	fn()
}

func TestWithConcurrency(t *testing.T) {
	c := MustNew(4, 2)
	if c.Concurrency() != 1 {
		t.Fatalf("default concurrency = %d, want 1 (serial)", c.Concurrency())
	}
	if got := c.WithConcurrency(7).Concurrency(); got != 7 {
		t.Fatalf("WithConcurrency(7).Concurrency() = %d", got)
	}
	if got := c.WithConcurrency(0).Concurrency(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("WithConcurrency(0) = %d, want GOMAXPROCS", got)
	}
	if c.Concurrency() != 1 {
		t.Fatal("WithConcurrency must not mutate the receiver")
	}
	// The derived codec must share the generator and still round-trip.
	p := c.WithConcurrency(4)
	shards := randShards(t, p, 4096, 77)
	if err := p.Encode(shards); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Verify(shards); err != nil || !ok {
		t.Fatalf("serial Verify of parallel Encode: ok=%v err=%v", ok, err)
	}
}

// encodeConfigs returns the (k,m) grid the differential tests sweep,
// including the paper's RS(6,3) and RS(10,4).
func encodeConfigs() [][2]int {
	return [][2]int{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {6, 3}, {10, 4}}
}

// unalignedSizes exercises shard sizes with 1..129-byte tails around the
// vector kernel's 32/64-byte block boundaries and the parallel span size.
func unalignedSizes() []int {
	return []int{1, 2, 31, 32, 33, 63, 64, 65, 127, 128, 129,
		4096 + 17, 32<<10 + 1, 64<<10 + 129}
}

// TestEncodeDifferential: for every config, size, kernel, and concurrency,
// the encoded parity must be byte-identical to the scalar serial
// reference.
func TestEncodeDifferential(t *testing.T) {
	for _, km := range encodeConfigs() {
		base := MustNew(km[0], km[1])
		for _, size := range unalignedSizes() {
			ref := randShards(t, base, size, int64(size)*31+int64(km[0]))
			withGFKernel(t, gf.KernelScalar, func() {
				if err := base.Encode(ref); err != nil {
					t.Fatal(err)
				}
			})
			for _, conc := range []int{1, 2, 5} {
				got := cloneShards(ref)
				for i := base.k; i < base.k+base.m; i++ {
					clear(got[i]) // wipe parity so Encode must recompute it
				}
				withGFKernel(t, gf.KernelVector, func() {
					if err := base.WithConcurrency(conc).Encode(got); err != nil {
						t.Fatal(err)
					}
				})
				for i := range ref {
					if !bytes.Equal(got[i], ref[i]) {
						t.Fatalf("RS(%d,%d) size=%d conc=%d: shard %d differs from scalar reference",
							km[0], km[1], size, conc, i)
					}
				}
			}
		}
	}
}

// TestReconstructDifferential drops random shard subsets and checks the
// vector/parallel reconstruction against the scalar serial one.
func TestReconstructDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, km := range encodeConfigs() {
		c := MustNew(km[0], km[1])
		for _, size := range []int{1, 129, 4096 + 17, 64<<10 + 1} {
			full := randShards(t, c, size, int64(size)+int64(km[1]))
			withGFKernel(t, gf.KernelScalar, func() {
				if err := c.Encode(full); err != nil {
					t.Fatal(err)
				}
			})
			for trial := 0; trial < 6; trial++ {
				nDrop := 1 + rng.Intn(km[1])
				dropped := rng.Perm(c.k + c.m)[:nDrop]

				want := cloneShards(full)
				for _, d := range dropped {
					want[d] = nil
				}
				got := cloneShards(full)
				for _, d := range dropped {
					got[d] = nil
				}
				withGFKernel(t, gf.KernelScalar, func() {
					if err := c.Reconstruct(want); err != nil {
						t.Fatal(err)
					}
				})
				withGFKernel(t, gf.KernelVector, func() {
					if err := c.WithConcurrency(4).Reconstruct(got); err != nil {
						t.Fatal(err)
					}
				})
				for i := range want {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("RS(%d,%d) size=%d drop=%v: shard %d differs",
							km[0], km[1], size, dropped, i)
					}
				}
			}
		}
	}
}

// TestUpdateParityDifferential checks the incremental parity update across
// kernels and concurrency levels, on unaligned sizes.
func TestUpdateParityDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, km := range [][2]int{{4, 2}, {6, 3}, {10, 4}} {
		c := MustNew(km[0], km[1])
		for _, size := range []int{1, 33, 127, 4096 + 5} {
			shards := randShards(t, c, size, int64(size)*7)
			withGFKernel(t, gf.KernelScalar, func() {
				if err := c.Encode(shards); err != nil {
					t.Fatal(err)
				}
			})
			idx := rng.Intn(c.k)
			newData := make([]byte, size)
			rng.Read(newData)

			want := cloneShards(shards)
			withGFKernel(t, gf.KernelScalar, func() {
				if err := c.UpdateParity(idx, want[idx], newData, want[c.k:]); err != nil {
					t.Fatal(err)
				}
			})
			got := cloneShards(shards)
			withGFKernel(t, gf.KernelVector, func() {
				if err := c.WithConcurrency(3).UpdateParity(idx, got[idx], newData, got[c.k:]); err != nil {
					t.Fatal(err)
				}
			})
			for p := 0; p < c.m; p++ {
				if !bytes.Equal(got[c.k+p], want[c.k+p]) {
					t.Fatalf("RS(%d,%d) size=%d: parity %d differs", km[0], km[1], size, p)
				}
			}
			// And the updated parity must still verify against the new data.
			got[idx] = newData
			ok, err := c.Verify(got)
			if err != nil || !ok {
				t.Fatalf("RS(%d,%d) size=%d: updated stripe fails Verify (ok=%v err=%v)",
					km[0], km[1], size, ok, err)
			}
		}
	}
}

// TestParallelEncodeAliasedSources covers encode input shards that alias
// each other (the same buffer appearing as two data shards).
func TestParallelEncodeAliasedSources(t *testing.T) {
	c := MustNew(4, 2).WithConcurrency(4)
	size := 32<<10 + 7
	shared := make([]byte, size)
	rand.New(rand.NewSource(5)).Read(shared)
	shards := make([][]byte, 6)
	shards[0] = shared
	shards[1] = shared // aliases shard 0
	shards[2] = make([]byte, size)
	shards[3] = make([]byte, size)
	shards[4] = make([]byte, size)
	shards[5] = make([]byte, size)
	rand.New(rand.NewSource(6)).Read(shards[2])
	rand.New(rand.NewSource(7)).Read(shards[3])
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Verify(shards); err != nil || !ok {
		t.Fatalf("aliased-source encode fails Verify (ok=%v err=%v)", ok, err)
	}
}

// TestMeasureEncodeMBps sanity-checks the calibration helper.
func TestMeasureEncodeMBps(t *testing.T) {
	c := MustNew(4, 2)
	mbps := MeasureEncodeMBps(c, 16<<10, 5e6) // 5ms window
	if mbps <= 0 {
		t.Fatalf("MeasureEncodeMBps = %v, want > 0", mbps)
	}
	if bad := MeasureEncodeMBps(c, -1, -1); bad <= 0 {
		t.Fatalf("MeasureEncodeMBps with defaulted args = %v, want > 0", bad)
	}
}

// BenchmarkEncode compares the scalar serial baseline against the
// vectorized serial and vectorized parallel codec for RS(4,2) on 64 KiB
// shards (plus the paper's configs), reporting MB/s of data encoded.
func BenchmarkEncode(b *testing.B) {
	for _, km := range [][2]int{{4, 2}, {6, 3}, {10, 4}} {
		for _, mode := range []struct {
			name   string
			kernel gf.Kernel
			conc   int
		}{
			{"scalar-serial", gf.KernelScalar, 1},
			{"vector-serial", gf.KernelVector, 1},
			{"vector-parallel", gf.KernelVector, 0},
		} {
			name := fmt.Sprintf("RS(%d,%d)/64KiB/%s", km[0], km[1], mode.name)
			b.Run(name, func(b *testing.B) {
				prev := gf.SetKernel(mode.kernel)
				defer gf.SetKernel(prev)
				c := MustNew(km[0], km[1]).WithConcurrency(mode.conc)
				shards := randShards(b, c, 64<<10, 42)
				b.SetBytes(int64(km[0]) * 64 << 10)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.Encode(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEncodeSpeedup measures the scalar serial baseline and the
// vectorized parallel hot path back to back for RS(4,2) on 64 KiB shards
// and reports the ratio directly, so the comparison the acceptance
// criterion asks for is visible in one benchmark line
// (speedup_x_vs_scalar).
func BenchmarkEncodeSpeedup(b *testing.B) {
	base := MustNew(4, 2)
	var scalarMBps float64
	withGFKernel(b, gf.KernelScalar, func() {
		scalarMBps = MeasureEncodeMBps(base, 64<<10, 30e6)
	})
	var vectorMBps float64
	withGFKernel(b, gf.KernelVector, func() {
		vectorMBps = MeasureEncodeMBps(base.WithConcurrency(0), 64<<10, 30e6)
	})
	// Keep the timed section meaningful: run the hot path itself.
	c := base.WithConcurrency(0)
	shards := randShards(b, c, 64<<10, 42)
	b.SetBytes(4 * 64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Report after the timed loop: ResetTimer discards earlier metrics.
	b.ReportMetric(scalarMBps, "scalar_MB/s")
	b.ReportMetric(vectorMBps, "vector_MB/s")
	if scalarMBps > 0 {
		b.ReportMetric(vectorMBps/scalarMBps, "speedup_x_vs_scalar")
	}
}
