//go:build race

package rs

// raceEnabled reports that the race detector is active: sync.Pool
// intentionally drops puts at random under -race, so allocation-count
// assertions are skipped there.
const raceEnabled = true
