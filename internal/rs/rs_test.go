package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randShards(t testing.TB, c *Code, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, c.TotalShards())
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < c.DataShards() {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return shards
}

func cloneShards(shards [][]byte) [][]byte {
	out := make([][]byte, len(shards))
	for i, s := range shards {
		if s != nil {
			out[i] = append([]byte(nil), s...)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	for _, km := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {200, 100}} {
		if _, err := New(km[0], km[1]); !errors.Is(err, ErrInvalidRSParams) {
			t.Errorf("New(%d,%d) err = %v, want ErrInvalidRSParams", km[0], km[1], err)
		}
	}
	c, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.DataShards() != 6 || c.ParityShards() != 3 || c.TotalShards() != 9 {
		t.Fatal("shard count accessors wrong")
	}
	if c.String() != "RS(6,3)" {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestStorageOverhead(t *testing.T) {
	// Paper §I: RS(6,3) has 1.5x storage overhead vs 3x for 3-replication.
	if got := MustNew(6, 3).StorageOverhead(); got != 1.5 {
		t.Fatalf("RS(6,3) overhead = %v, want 1.5", got)
	}
	if got := MustNew(10, 4).StorageOverhead(); got != 1.4 {
		t.Fatalf("RS(10,4) overhead = %v, want 1.4", got)
	}
}

func TestEncodeVerify(t *testing.T) {
	for _, km := range [][2]int{{6, 3}, {10, 4}, {2, 1}, {4, 2}} {
		c := MustNew(km[0], km[1])
		shards := randShards(t, c, 4096, 42)
		ok, err := c.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("%v Verify = %v, %v; want true", c, ok, err)
		}
		// Corrupt one byte: verification must fail.
		shards[0][17] ^= 0xff
		ok, err = c.Verify(shards)
		if err != nil || ok {
			t.Fatalf("%v Verify after corruption = %v, %v; want false", c, ok, err)
		}
	}
}

func TestFirstParityIsXor(t *testing.T) {
	// The generator's first coding row is all ones (paper Fig 3b), so parity
	// shard 0 must equal the XOR of the data shards.
	c := MustNew(6, 3)
	shards := randShards(t, c, 512, 7)
	xor := make([]byte, 512)
	for d := 0; d < 6; d++ {
		for i := range xor {
			xor[i] ^= shards[d][i]
		}
	}
	if !bytes.Equal(xor, shards[6]) {
		t.Fatal("first parity shard is not the XOR of data shards")
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	// Exhaustively erase every subset of size 1..m and reconstruct.
	for _, km := range [][2]int{{6, 3}, {4, 2}} {
		c := MustNew(km[0], km[1])
		orig := randShards(t, c, 1024, 99)
		n := c.TotalShards()
		for mask := 1; mask < 1<<n; mask++ {
			erased := 0
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					erased++
				}
			}
			if erased > c.ParityShards() {
				continue
			}
			work := cloneShards(orig)
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					work[b] = nil
				}
			}
			if err := c.Reconstruct(work); err != nil {
				t.Fatalf("%v mask %b: %v", c, mask, err)
			}
			for b := 0; b < n; b++ {
				if !bytes.Equal(work[b], orig[b]) {
					t.Fatalf("%v mask %b: shard %d mismatch", c, mask, b)
				}
			}
		}
	}
}

func TestReconstructTooManyErasures(t *testing.T) {
	c := MustNew(6, 3)
	shards := randShards(t, c, 256, 3)
	for i := 0; i < 4; i++ {
		shards[i] = nil
	}
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructDataOnly(t *testing.T) {
	c := MustNew(6, 3)
	orig := randShards(t, c, 256, 5)
	work := cloneShards(orig)
	work[2] = nil
	work[7] = nil // parity
	if err := c.ReconstructData(work); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[2], orig[2]) {
		t.Fatal("data shard not reconstructed")
	}
	if work[7] != nil {
		t.Fatal("ReconstructData must leave parity shards nil")
	}
}

func TestReconstructNoopWhenComplete(t *testing.T) {
	c := MustNew(4, 2)
	orig := randShards(t, c, 128, 11)
	work := cloneShards(orig)
	if err := c.Reconstruct(work); err != nil {
		t.Fatal(err)
	}
	for i := range work {
		if !bytes.Equal(work[i], orig[i]) {
			t.Fatal("Reconstruct must not modify complete shards")
		}
	}
}

func TestReconstructPreservesPresentShards(t *testing.T) {
	c := MustNew(6, 3)
	orig := randShards(t, c, 256, 13)
	work := cloneShards(orig)
	work[0], work[8] = nil, nil
	if err := c.Reconstruct(work); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		if !bytes.Equal(work[i], orig[i]) {
			t.Fatalf("present shard %d modified", i)
		}
	}
}

func TestQuickRandomErasures(t *testing.T) {
	// Property: for random data, random shard size and any random erasure set
	// of size <= m, reconstruction recovers the original content exactly.
	type cfg struct{ K, M uint8 }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(12)
		m := 1 + rng.Intn(5)
		c := MustNew(k, m)
		size := 1 + rng.Intn(2048)
		shards := make([][]byte, c.TotalShards())
		for i := range shards {
			shards[i] = make([]byte, size)
			if i < k {
				rng.Read(shards[i])
			}
		}
		if err := c.Encode(shards); err != nil {
			return false
		}
		orig := cloneShards(shards)
		erasures := rng.Intn(m + 1)
		for i := 0; i < erasures; i++ {
			shards[rng.Intn(k+m)] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		ok, err := c.Verify(shards)
		return ok && err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	c := MustNew(6, 3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10000)
		data := make([]byte, n)
		rng.Read(data)
		shards, err := c.Split(data)
		if err != nil {
			return false
		}
		if err := c.Encode(shards); err != nil {
			return false
		}
		out, err := c.Join(shards, n)
		if err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSplitEmpty(t *testing.T) {
	c := MustNew(4, 2)
	if _, err := c.Split(nil); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Split(nil) err = %v, want ErrShardSize", err)
	}
}

func TestJoinErrors(t *testing.T) {
	c := MustNew(4, 2)
	if _, err := c.Join([][]byte{{1}}, 1); !errors.Is(err, ErrShardCount) {
		t.Fatalf("short Join err = %v", err)
	}
	shards, _ := c.Split([]byte{1, 2, 3, 4})
	shards[0] = nil
	if _, err := c.Join(shards, 4); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("Join with nil data shard err = %v", err)
	}
	shards, _ = c.Split([]byte{1, 2, 3, 4})
	if _, err := c.Join(shards, 100); err == nil {
		t.Fatal("Join with oversized request must fail")
	}
}

func TestEncodeValidation(t *testing.T) {
	c := MustNew(4, 2)
	if err := c.Encode(make([][]byte, 3)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("wrong shard count err = %v", err)
	}
	shards := [][]byte{{1}, {2}, {3}, {4}, {5, 6}, {7}}
	if err := c.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged shards err = %v", err)
	}
	shards = [][]byte{{1}, nil, {3}, {4}, {5}, {6}}
	if err := c.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("nil shard in Encode err = %v", err)
	}
}

func TestUpdateParityMatchesFullEncode(t *testing.T) {
	c := MustNew(6, 3)
	shards := randShards(t, c, 512, 21)
	rng := rand.New(rand.NewSource(22))
	newData := make([]byte, 512)
	rng.Read(newData)

	// Incremental update of data shard 3.
	parity := shards[6:]
	if err := c.UpdateParity(3, shards[3], newData, parity); err != nil {
		t.Fatal(err)
	}
	shards[3] = newData

	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify after UpdateParity = %v, %v; want true", ok, err)
	}
}

func TestUpdateParityValidation(t *testing.T) {
	c := MustNew(4, 2)
	shards := randShards(t, c, 64, 1)
	if err := c.UpdateParity(9, shards[0], shards[0], shards[4:]); err == nil {
		t.Fatal("bad index must error")
	}
	if err := c.UpdateParity(0, shards[0], shards[0][:10], shards[4:]); !errors.Is(err, ErrShardSize) {
		t.Fatalf("size mismatch err = %v", err)
	}
	if err := c.UpdateParity(0, shards[0], shards[0], shards[4:5]); !errors.Is(err, ErrShardCount) {
		t.Fatalf("parity count err = %v", err)
	}
}

func TestGeneratorCopyIsIsolated(t *testing.T) {
	c := MustNew(4, 2)
	g := c.Generator()
	g.Set(0, 0, 99)
	shards := randShards(t, c, 64, 2)
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatal("mutating the returned generator must not affect the code")
	}
}

func TestPaperConfigsChunkMath(t *testing.T) {
	// Paper §V: with 4KB chunks the stripe width of RS(6,3) is 24KB and of
	// RS(10,4) is 40KB.
	const chunk = 4096
	if got := MustNew(6, 3).DataShards() * chunk; got != 24*1024 {
		t.Fatalf("RS(6,3) stripe width = %d, want 24KB", got)
	}
	if got := MustNew(10, 4).DataShards() * chunk; got != 40*1024 {
		t.Fatalf("RS(10,4) stripe width = %d, want 40KB", got)
	}
}

func benchEncode(b *testing.B, k, m, size int) {
	c := MustNew(k, m)
	shards := make([][]byte, c.TotalShards())
	rng := rand.New(rand.NewSource(1))
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < k {
			rng.Read(shards[i])
		}
	}
	b.SetBytes(int64(k * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReconstruct(b *testing.B, k, m, size, erasures int) {
	c := MustNew(k, m)
	orig := make([][]byte, c.TotalShards())
	rng := rand.New(rand.NewSource(1))
	for i := range orig {
		orig[i] = make([]byte, size)
		if i < k {
			rng.Read(orig[i])
		}
	}
	if err := c.Encode(orig); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(k * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, len(orig))
		copy(work, orig)
		for e := 0; e < erasures; e++ {
			work[e] = nil
		}
		if err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

// Encoding throughput for the paper's two production configurations with the
// 4KB chunk size Ceph uses.
func BenchmarkEncodeRS6_3(b *testing.B)  { benchEncode(b, 6, 3, 4096) }
func BenchmarkEncodeRS10_4(b *testing.B) { benchEncode(b, 10, 4, 4096) }

// Repair cost, the paper's §II-C decoding discussion.
func BenchmarkReconstructRS6_3(b *testing.B)  { benchReconstruct(b, 6, 3, 4096, 3) }
func BenchmarkReconstructRS10_4(b *testing.B) { benchReconstruct(b, 10, 4, 4096, 4) }
