package rs

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"ecarray/internal/gf"
)

// FuzzEncodeReconstruct is the codec round-trip fuzz target: derive an
// RS(k,m) config and shard contents from the fuzz input, encode, drop up
// to m shards (pattern also input-derived), reconstruct, and require the
// original bytes back. It cross-checks the vector kernel against the
// scalar reference and the parallel codec against the serial one on every
// input, so a kernel or sharding bug found by the fuzzer is attributed
// immediately.
//
// Run `go test -fuzz=FuzzEncodeReconstruct ./internal/rs` to explore; the
// checked-in corpus under testdata/fuzz covers the (k,m) grid including
// the paper's RS(6,3) and RS(10,4).
// FuzzStreamRoundTrip is the streaming round-trip fuzz target:
// StreamEncode an input-derived payload at an input-derived chunk size,
// drop an input-derived subset of shard streams, StreamDecode, and
// require the original bytes back. It also cross-checks the active
// (fused/GFNI) kernel's shard streams against the scalar reference so a
// kernel divergence on the streaming path is attributed immediately.
//
// Run `go test -fuzz=FuzzStreamRoundTrip ./internal/rs` to explore; the
// checked-in corpus under testdata/fuzz covers the paper's RS(6,3) and
// RS(10,4), single-byte chunks, padding tails, and erasure patterns.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add([]byte("a"), byte(1), byte(1), byte(1), uint16(0))
	f.Add([]byte("stream me please"), byte(4), byte(2), byte(7), uint16(1))
	f.Add(bytes.Repeat([]byte{0x5a}, 1000), byte(6), byte(3), byte(64), uint16(0b101))
	f.Add(bytes.Repeat([]byte("f4"), 300), byte(10), byte(4), byte(32), uint16(0b10010001))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0}, byte(2), byte(2), byte(3), uint16(0xffff))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, mRaw, chunkRaw byte, lostMask uint16) {
		k := 1 + int(kRaw)%10
		m := 1 + int(mRaw)%4
		chunk := 1 + int(chunkRaw)%300
		if len(data) == 0 {
			data = []byte{1}
		}
		if len(data) > 1<<15 {
			data = data[:1<<15]
		}
		c := MustNew(k, m)

		// Encode under the scalar reference and the active (best) kernel;
		// every shard stream must match bit for bit.
		encodeAll := func() [][]byte {
			bufs := make([]*bytes.Buffer, k+m)
			ws := make([]io.Writer, k+m)
			for i := range ws {
				bufs[i] = &bytes.Buffer{}
				ws[i] = bufs[i]
			}
			n, err := c.StreamEncode(bytes.NewReader(data), ws, chunk)
			if err != nil {
				t.Fatalf("RS(%d,%d) chunk=%d: StreamEncode: %v", k, m, chunk, err)
			}
			if n != int64(len(data)) {
				t.Fatalf("StreamEncode consumed %d bytes, want %d", n, len(data))
			}
			out := make([][]byte, k+m)
			for i := range out {
				out[i] = bufs[i].Bytes()
			}
			return out
		}
		prev := gf.SetKernel(gf.KernelScalar)
		ref := encodeAll()
		gf.SetKernel(gf.KernelAuto)
		got := encodeAll()
		gf.SetKernel(prev)
		for i := range ref {
			if !bytes.Equal(got[i], ref[i]) {
				t.Fatalf("RS(%d,%d) chunk=%d: shard stream %d differs between scalar and %v kernels",
					k, m, chunk, i, gf.BestKernel())
			}
		}

		// Drop up to m streams per the mask, then decode what remains.
		readers := make([]io.Reader, k+m)
		dropped := 0
		for i := range readers {
			if lostMask&(1<<i) != 0 && dropped < m {
				dropped++
				continue
			}
			readers[i] = bytes.NewReader(ref[i])
		}
		var out bytes.Buffer
		if err := c.StreamDecode(&out, readers, int64(len(data)), chunk); err != nil {
			t.Fatalf("RS(%d,%d) chunk=%d mask=%b: StreamDecode: %v", k, m, chunk, lostMask, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("RS(%d,%d) chunk=%d mask=%b: payload not recovered", k, m, chunk, lostMask)
		}
	})
}

func FuzzEncodeReconstruct(f *testing.F) {
	f.Add(byte(1), byte(1), int64(1), []byte("a"))
	f.Add(byte(2), byte(1), int64(2), []byte("hello rs"))
	f.Add(byte(4), byte(2), int64(3), bytes.Repeat([]byte{0xa5}, 130))
	f.Add(byte(6), byte(3), int64(4), []byte("the paper's RS(6,3) Colossus configuration"))
	f.Add(byte(10), byte(4), int64(5), bytes.Repeat([]byte("f4"), 65))
	f.Add(byte(12), byte(4), int64(-77), []byte{0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, kRaw, mRaw byte, seed int64, data []byte) {
		k := 1 + int(kRaw)%12
		m := 1 + int(mRaw)%5
		c, err := New(k, m)
		if err != nil {
			t.Skip()
		}
		if len(data) == 0 {
			data = []byte{0}
		}
		// Shard size: spread the input across k shards with a tail, capped
		// so the fuzzer stays fast.
		size := (len(data) + k - 1) / k
		if size > 8<<10 {
			size = 8 << 10
		}
		shards := make([][]byte, k+m)
		for i := range shards {
			shards[i] = make([]byte, size)
		}
		for i := 0; i < k; i++ {
			lo := i * size
			if lo < len(data) {
				hi := lo + size
				if hi > len(data) {
					hi = len(data)
				}
				copy(shards[i], data[lo:hi])
			}
		}

		// Encode with the scalar reference, then with the parallel vector
		// codec; both parities must agree bit for bit.
		ref := cloneShards(shards)
		prev := gf.SetKernel(gf.KernelScalar)
		err = c.Encode(ref)
		gf.SetKernel(prev)
		if err != nil {
			t.Fatalf("scalar encode: %v", err)
		}
		par := c.WithConcurrency(4)
		if err := par.Encode(shards); err != nil {
			t.Fatalf("parallel encode: %v", err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], ref[i]) {
				t.Fatalf("RS(%d,%d): parallel/vector shard %d differs from scalar reference", k, m, i)
			}
		}

		// Drop up to m shards chosen by the seed, then reconstruct.
		rng := rand.New(rand.NewSource(seed))
		nDrop := 1 + rng.Intn(m)
		order := rng.Perm(k + m)
		damaged := cloneShards(shards)
		for _, d := range order[:nDrop] {
			damaged[d] = nil
		}
		if err := par.Reconstruct(damaged); err != nil {
			t.Fatalf("RS(%d,%d) drop %v: reconstruct: %v", k, m, order[:nDrop], err)
		}
		for i := range shards {
			if !bytes.Equal(damaged[i], shards[i]) {
				t.Fatalf("RS(%d,%d) drop %v: shard %d not restored", k, m, order[:nDrop], i)
			}
		}
		if ok, err := c.Verify(damaged); err != nil || !ok {
			t.Fatalf("RS(%d,%d): reconstructed stripe fails Verify (ok=%v err=%v)", k, m, ok, err)
		}
	})
}
