package rs

import (
	"bytes"
	"math/rand"
	"testing"

	"ecarray/internal/gf"
)

// FuzzEncodeReconstruct is the codec round-trip fuzz target: derive an
// RS(k,m) config and shard contents from the fuzz input, encode, drop up
// to m shards (pattern also input-derived), reconstruct, and require the
// original bytes back. It cross-checks the vector kernel against the
// scalar reference and the parallel codec against the serial one on every
// input, so a kernel or sharding bug found by the fuzzer is attributed
// immediately.
//
// Run `go test -fuzz=FuzzEncodeReconstruct ./internal/rs` to explore; the
// checked-in corpus under testdata/fuzz covers the (k,m) grid including
// the paper's RS(6,3) and RS(10,4).
func FuzzEncodeReconstruct(f *testing.F) {
	f.Add(byte(1), byte(1), int64(1), []byte("a"))
	f.Add(byte(2), byte(1), int64(2), []byte("hello rs"))
	f.Add(byte(4), byte(2), int64(3), bytes.Repeat([]byte{0xa5}, 130))
	f.Add(byte(6), byte(3), int64(4), []byte("the paper's RS(6,3) Colossus configuration"))
	f.Add(byte(10), byte(4), int64(5), bytes.Repeat([]byte("f4"), 65))
	f.Add(byte(12), byte(4), int64(-77), []byte{0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, kRaw, mRaw byte, seed int64, data []byte) {
		k := 1 + int(kRaw)%12
		m := 1 + int(mRaw)%5
		c, err := New(k, m)
		if err != nil {
			t.Skip()
		}
		if len(data) == 0 {
			data = []byte{0}
		}
		// Shard size: spread the input across k shards with a tail, capped
		// so the fuzzer stays fast.
		size := (len(data) + k - 1) / k
		if size > 8<<10 {
			size = 8 << 10
		}
		shards := make([][]byte, k+m)
		for i := range shards {
			shards[i] = make([]byte, size)
		}
		for i := 0; i < k; i++ {
			lo := i * size
			if lo < len(data) {
				hi := lo + size
				if hi > len(data) {
					hi = len(data)
				}
				copy(shards[i], data[lo:hi])
			}
		}

		// Encode with the scalar reference, then with the parallel vector
		// codec; both parities must agree bit for bit.
		ref := cloneShards(shards)
		prev := gf.SetKernel(gf.KernelScalar)
		err = c.Encode(ref)
		gf.SetKernel(prev)
		if err != nil {
			t.Fatalf("scalar encode: %v", err)
		}
		par := c.WithConcurrency(4)
		if err := par.Encode(shards); err != nil {
			t.Fatalf("parallel encode: %v", err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], ref[i]) {
				t.Fatalf("RS(%d,%d): parallel/vector shard %d differs from scalar reference", k, m, i)
			}
		}

		// Drop up to m shards chosen by the seed, then reconstruct.
		rng := rand.New(rand.NewSource(seed))
		nDrop := 1 + rng.Intn(m)
		order := rng.Perm(k + m)
		damaged := cloneShards(shards)
		for _, d := range order[:nDrop] {
			damaged[d] = nil
		}
		if err := par.Reconstruct(damaged); err != nil {
			t.Fatalf("RS(%d,%d) drop %v: reconstruct: %v", k, m, order[:nDrop], err)
		}
		for i := range shards {
			if !bytes.Equal(damaged[i], shards[i]) {
				t.Fatalf("RS(%d,%d) drop %v: shard %d not restored", k, m, order[:nDrop], i)
			}
		}
		if ok, err := c.Verify(damaged); err != nil || !ok {
			t.Fatalf("RS(%d,%d): reconstructed stripe fails Verify (ok=%v err=%v)", k, m, ok, err)
		}
	})
}
