package rs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ecarray/internal/gf"
)

// fusedTiers lists the kernel tiers that must match the scalar reference
// byte for byte. Tiers the CPU lacks fall back internally, so the full
// list runs on every machine.
func fusedTiers() []gf.Kernel {
	return []gf.Kernel{gf.KernelAVX2, gf.KernelFused, gf.KernelGFNI}
}

// fusedTailSizes covers every 1..129-byte shard size (the unaligned tails
// the ISSUE calls out) plus sizes straddling the fused kernels' 256-byte
// chunk and the parallel span boundary.
func fusedTailSizes() []int {
	sizes := make([]int, 0, 140)
	for n := 1; n <= 129; n++ {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, 255, 256, 257, 511, 512, 513, 4096+17, 32<<10+129)
	return sizes
}

// TestFusedEncodeDifferential proves the fused and GFNI kernels are
// byte-identical to the scalar reference across the full k∈{2..10},
// m∈{1..4} grid on unaligned 1..129-byte shard tails.
func TestFusedEncodeDifferential(t *testing.T) {
	sizes := fusedTailSizes()
	for k := 2; k <= 10; k++ {
		for m := 1; m <= 4; m++ {
			c := MustNew(k, m)
			// Each (k,m) cell samples a rotating subset of sizes so the grid
			// stays fast; every size is still covered many times across cells.
			for si := (k*7 + m) % 4; si < len(sizes); si += 4 {
				size := sizes[si]
				ref := randShards(t, c, size, int64(k*1000+m*100+size))
				withGFKernel(t, gf.KernelScalar, func() {
					if err := c.Encode(ref); err != nil {
						t.Fatal(err)
					}
				})
				for _, tier := range fusedTiers() {
					got := cloneShards(ref)
					for i := c.k; i < c.k+c.m; i++ {
						clear(got[i])
					}
					withGFKernel(t, tier, func() {
						if err := c.Encode(got); err != nil {
							t.Fatal(err)
						}
					})
					for i := range ref {
						if !bytes.Equal(got[i], ref[i]) {
							t.Fatalf("RS(%d,%d) size=%d tier=%v: shard %d differs from scalar",
								k, m, size, tier, i)
						}
					}
				}
			}
		}
	}
}

// TestFusedEncodeAliasedSources: the same buffer appearing as several data
// shards must encode identically on every tier (sources are read-only in
// the fused kernels).
func TestFusedEncodeAliasedSources(t *testing.T) {
	for _, tier := range fusedTiers() {
		c := MustNew(6, 3)
		size := 4096 + 31
		shared := make([]byte, size)
		rand.New(rand.NewSource(17)).Read(shared)
		shards := make([][]byte, 9)
		shards[0], shards[1], shards[2] = shared, shared, shared
		for i := 3; i < 9; i++ {
			shards[i] = make([]byte, size)
			rand.New(rand.NewSource(int64(18 + i))).Read(shards[i])
		}
		ref := cloneShards(shards)
		withGFKernel(t, gf.KernelScalar, func() {
			if err := c.Encode(ref); err != nil {
				t.Fatal(err)
			}
		})
		withGFKernel(t, tier, func() {
			if err := c.Encode(shards); err != nil {
				t.Fatal(err)
			}
		})
		for i := range shards {
			if !bytes.Equal(shards[i], ref[i]) {
				t.Fatalf("tier %v: aliased encode shard %d differs", tier, i)
			}
		}
	}
}

// TestFusedReconstructAndUpdateDifferential runs reconstruction and
// incremental parity updates under the fused tiers against the scalar
// reference on the paper's configurations.
func TestFusedReconstructAndUpdateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, km := range [][2]int{{6, 3}, {10, 4}} {
		c := MustNew(km[0], km[1])
		for _, size := range []int{1, 129, 257, 4096 + 17} {
			full := randShards(t, c, size, int64(size)*13)
			withGFKernel(t, gf.KernelScalar, func() {
				if err := c.Encode(full); err != nil {
					t.Fatal(err)
				}
			})
			for _, tier := range fusedTiers() {
				nDrop := 1 + rng.Intn(km[1])
				dropped := rng.Perm(c.k + c.m)[:nDrop]
				got := cloneShards(full)
				for _, d := range dropped {
					got[d] = nil
				}
				withGFKernel(t, tier, func() {
					if err := c.WithConcurrency(3).Reconstruct(got); err != nil {
						t.Fatal(err)
					}
				})
				for i := range full {
					if !bytes.Equal(got[i], full[i]) {
						t.Fatalf("RS(%d,%d) size=%d tier=%v drop=%v: shard %d differs",
							km[0], km[1], size, tier, dropped, i)
					}
				}

				idx := rng.Intn(c.k)
				newData := make([]byte, size)
				rng.Read(newData)
				want := cloneShards(full)
				withGFKernel(t, gf.KernelScalar, func() {
					if err := c.UpdateParity(idx, want[idx], newData, want[c.k:]); err != nil {
						t.Fatal(err)
					}
				})
				upd := cloneShards(full)
				withGFKernel(t, tier, func() {
					if err := c.UpdateParity(idx, upd[idx], newData, upd[c.k:]); err != nil {
						t.Fatal(err)
					}
				})
				for p := 0; p < c.m; p++ {
					if !bytes.Equal(upd[c.k+p], want[c.k+p]) {
						t.Fatalf("RS(%d,%d) size=%d tier=%v: updated parity %d differs",
							km[0], km[1], size, tier, p)
					}
				}
			}
		}
	}
}

// BenchmarkFusedSpeedup measures the acceptance comparison directly: the
// fused multi-source path against PR 1's per-source vector path for
// RS(10,4) on 64 KiB shards, serial codec, with the GFNI tier reported
// separately when the CPU exposes it. The timed loop runs the
// auto-selected (best fused) tier; the metrics carry the per-tier MB/s
// and the speedup ratios.
func BenchmarkFusedSpeedup(b *testing.B) {
	base := MustNew(10, 4)
	measure := func(k gf.Kernel) float64 {
		var mbps float64
		withGFKernel(b, k, func() {
			mbps = MeasureEncodeMBps(base, 64<<10, 50e6)
		})
		return mbps
	}
	avx2 := measure(gf.KernelAVX2) // PR-1 per-source vector path
	fused := measure(gf.KernelFused)
	var gfni float64
	if gf.HasGFNI() {
		gfni = measure(gf.KernelGFNI)
	}

	// Timed section: the hot path itself under the auto-selected tier.
	prev := gf.SetKernel(gf.KernelAuto)
	defer gf.SetKernel(prev)
	shards := randShards(b, base, 64<<10, 42)
	b.SetBytes(10 * 64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := base.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(avx2, "avx2_MB/s")
	b.ReportMetric(fused, "fused_MB/s")
	if avx2 > 0 {
		b.ReportMetric(fused/avx2, "fused_x_vs_avx2")
	}
	if gfni > 0 {
		b.ReportMetric(gfni, "gfni_MB/s")
		b.ReportMetric(gfni/avx2, "gfni_x_vs_avx2")
	}
}

// BenchmarkEncodeTiers reports the full tier ladder on the paper's
// configurations at 64 KiB shards.
func BenchmarkEncodeTiers(b *testing.B) {
	for _, km := range [][2]int{{6, 3}, {10, 4}} {
		for _, tier := range []gf.Kernel{gf.KernelScalar, gf.KernelAVX2, gf.KernelFused, gf.KernelGFNI} {
			if tier == gf.KernelGFNI && !gf.HasGFNI() {
				continue
			}
			b.Run(fmt.Sprintf("RS(%d,%d)/64KiB/%s", km[0], km[1], tier), func(b *testing.B) {
				prev := gf.SetKernel(tier)
				defer gf.SetKernel(prev)
				c := MustNew(km[0], km[1])
				shards := randShards(b, c, 64<<10, 42)
				b.SetBytes(int64(km[0]) * 64 << 10)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.Encode(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
