// Quickstart: build a small simulated SSD-array cluster, store data through
// the paper's RS(6,3) erasure-coded pool, read it back with verification,
// and print the cluster-side costs of doing so.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ecarray"
)

func main() {
	// A scaled-down cluster in data-carrying mode: every byte really flows
	// through striping, GF(2^8) encoding, the object stores and the
	// simulated flash devices.
	cfg := ecarray.DefaultConfig()
	cfg.DeviceCapacity = 2 << 30
	cfg.PGsPerPool = 64
	cfg.CarryData = true

	cluster, err := ecarray.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// RS(6,3): the Google Colossus configuration — tolerates any 3 lost
	// chunks at 1.5x storage overhead (vs 3x for 3-replication).
	if _, err := cluster.CreatePool("data", ecarray.ProfileEC(6, 3)); err != nil {
		log.Fatal(err)
	}
	img, err := cluster.CreateImage("data", "vol0", 64<<20)
	if err != nil {
		log.Fatal(err)
	}

	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}

	// All cluster I/O happens in virtual time: spawn a process and step the
	// engine until it completes.
	var got []byte
	cluster.Engine().RunProc("quickstart", func(p *ecarray.Proc) {
		if err := img.Write(p, 4096, payload, int64(len(payload))); err != nil {
			log.Fatal(err)
		}
		got, err = img.Read(p, 4096, int64(len(payload)))
		if err != nil {
			log.Fatal(err)
		}
	})

	if !bytes.Equal(got, payload) {
		log.Fatal("read-back mismatch: erasure coding pipeline corrupted data")
	}
	fmt.Println("wrote and verified 1 MiB through RS(6,3)")

	m := cluster.Metrics()
	defer func() { // drain background daemons before exit
		cluster.Stop()
		cluster.Engine().Run()
	}()
	fmt.Printf("virtual time elapsed:   %v\n", cluster.Engine().Now())
	fmt.Printf("device writes:          %.1f MiB (%.2fx the payload: stripes + parity + WAL + metadata)\n",
		float64(m.DeviceWriteBytes)/(1<<20), float64(m.DeviceWriteBytes)/float64(len(payload)))
	fmt.Printf("device reads:           %.1f MiB\n", float64(m.DeviceReadBytes)/(1<<20))
	fmt.Printf("private network:        %.1f MiB (chunk pushes + RS-concatenation pulls)\n",
		float64(m.PrivateBytes)/(1<<20))
	fmt.Printf("context switches:       %d\n", m.ContextSwitches)
	fmt.Printf("storage-cluster CPU:    %.2f%% user / %.2f%% system\n",
		m.UserCPU*100, m.KernelCPU*100)
}
