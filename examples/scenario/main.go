// Scenario: compose the paper's most interesting conditions in one run —
// two tenants (a 3-replicated pool and an RS(6,3) erasure-coded pool)
// sharing the cluster, an OSD failure at t=1s, and background recovery
// overlapping foreground traffic — using the ecarray Scenario API. The
// same seed and scenario produce byte-identical results on every run.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ecarray"
)

func main() {
	phase := flag.Duration("phase", time.Second, "length of each of the three phases")
	flag.Parse()

	cfg := ecarray.DefaultConfig()
	cfg.DeviceCapacity = 4 << 30
	cfg.PGsPerPool = 128

	cluster, err := ecarray.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.CreatePool("rep", ecarray.ProfileReplicated(3)); err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.CreatePool("ec", ecarray.ProfileEC(6, 3)); err != nil {
		log.Fatal(err)
	}
	repImg, err := cluster.CreateImage("rep", "tenant-a", 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	ecImg, err := cluster.CreateImage("ec", "tenant-b", 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	repImg.Prefill()
	ecImg.Prefill()

	// Three phases: healthy baseline, degraded service after osd3 fails at
	// the first boundary (t = 1s by default), then repair overlapping the
	// foreground tenants.
	res, err := ecarray.NewScenario(cluster).
		AddJob(repImg, ecarray.Job{
			Name: "tenant-a(3rep)", Op: ecarray.OpMixed, MixRead: 70,
			Pattern: ecarray.PatternRandom, BlockSize: 4 << 10,
			QueueDepth: 64, Duration: 3 * *phase, Seed: 1,
		}).
		AddJob(ecImg, ecarray.Job{
			Name: "tenant-b(ec)", Op: ecarray.OpMixed, MixRead: 70,
			Pattern: ecarray.PatternRandom, BlockSize: 4 << 10,
			QueueDepth: 64, Duration: 3 * *phase, Seed: 2,
		}).
		Phase("healthy", *phase).
		Phase("degraded", *phase).
		Phase("recovering", *phase).
		At(*phase, ecarray.FailOSD(3)).
		At(2**phase, ecarray.SetRecoveryRate("ec", 128<<20)).
		At(2**phase, ecarray.StartRecovery("ec")).
		At(2**phase, ecarray.StartRecovery("rep")).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		cluster.Stop()
		cluster.Engine().Run()
	}()

	fmt.Println(res)
	fmt.Println()
	fmt.Printf("%-16s %-12s %10s %10s %12s %12s\n",
		"tenant", "phase", "MB/s", "IOPS", "mean ms", "p99 ms")
	for _, jr := range res.Jobs {
		for i, pr := range jr.Phases {
			fmt.Printf("%-16s %-12s %10.1f %10.0f %12.2f %12.2f\n",
				jr.Result.Job.Name, res.Phases[i].Name, pr.MBps, pr.IOPS,
				float64(pr.MeanLatency)/1e6, float64(pr.P99Latency)/1e6)
		}
	}

	fmt.Println()
	for i, pm := range res.PhaseMetrics {
		fmt.Printf("phase %-12s cluster: %5.1f%% CPU, %6.1f MiB private net, %6.1f MiB device reads\n",
			res.Phases[i].Name, (pm.UserCPU+pm.KernelCPU)*100,
			float64(pm.PrivateBytes)/(1<<20), float64(pm.DeviceReadBytes)/(1<<20))
	}

	fmt.Println()
	for _, rec := range res.Recoveries {
		if rec.Err != nil {
			log.Fatalf("recovery of %s failed: %v", rec.Pool, rec.Err)
		}
		fmt.Printf("recovery %-4s: %d PGs, %d objects, pulled %.1f MiB, rebuilt %.1f MiB in %v\n",
			rec.Pool, rec.Stats.PGsRepaired, rec.Stats.ObjectsRepaired,
			float64(rec.Stats.BytesPulled)/(1<<20), float64(rec.Stats.BytesRebuilt)/(1<<20),
			rec.Stats.DurationSimulated.Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("event log:")
	for _, ev := range res.Events {
		fmt.Printf("  %v\n", ev)
	}
}
