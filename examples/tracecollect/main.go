// Tracecollect: run a workload with a blktrace-style recorder attached to
// every OSD device (as the paper does with blktrace, §III), write the trace
// to disk in the ecarray text format, parse it back and summarize it.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"ecarray"
)

func main() {
	cfg := ecarray.DefaultConfig()
	cfg.DeviceCapacity = 2 << 30
	cfg.PGsPerPool = 256

	cluster, err := ecarray.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.CreatePool("data", ecarray.ProfileEC(6, 3)); err != nil {
		log.Fatal(err)
	}
	img, err := cluster.CreateImage("data", "vol0", 2<<30)
	if err != nil {
		log.Fatal(err)
	}

	rec := ecarray.NewTraceRecorder(cluster)
	rec.SetMeta("scheme", "RS(6,3)")
	rec.SetMeta("workload", "randwrite")
	rec.SetMeta("bs", "16384")
	rec.Attach(cluster)

	res, err := ecarray.RunJob(cluster, img, ecarray.Job{
		Name: "trace", Op: ecarray.OpWrite, Pattern: ecarray.PatternRandom,
		BlockSize: 16 << 10, QueueDepth: 64, Duration: 500 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n", res)

	const path = "randwrite_rs6_3.trace"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rec.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d block events to %s\n", rec.Len(), path)

	// Round-trip: parse the file back and summarize, as a downstream trace
	// consumer would.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	meta, events, err := ecarray.ParseTrace(rf)
	if err != nil {
		log.Fatal(err)
	}
	s := ecarray.SummarizeTrace(events)
	fmt.Printf("parsed back: scheme=%s workload=%s bs=%s\n", meta["scheme"], meta["workload"], meta["bs"])
	fmt.Printf("  %d events across %d devices, spanning %v\n", s.Events, s.Devices, s.Span)
	fmt.Printf("  device reads  %.1f MiB\n", float64(s.ReadBytes)/(1<<20))
	fmt.Printf("  device writes %.1f MiB (vs %.1f MiB requested: EC write amplification)\n",
		float64(s.WriteBytes)/(1<<20), float64(res.Bytes)/(1<<20))
}
