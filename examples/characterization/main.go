// Characterization: reproduce the paper's Fig 1 summary experiment — 4 KB
// random reads and writes at queue depth 256, RS(10,4) versus
// 3-replication — and print the normalized comparison across all six
// viewpoints (throughput, latency, CPU, context switches, private network,
// I/O amplification).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ecarray"
)

var duration = flag.Duration("duration", 1600*time.Millisecond, "measurement window per run")

type outcome struct {
	read, write ecarray.Result
}

func runScheme(name string, profile ecarray.Profile) outcome {
	run := func(op ecarray.Op, prefill bool) ecarray.Result {
		cfg := ecarray.DefaultConfig()
		cfg.DeviceCapacity = 2 << 30
		cfg.PGsPerPool = 512
		cluster, err := ecarray.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cluster.CreatePool("data", profile); err != nil {
			log.Fatal(err)
		}
		img, err := cluster.CreateImage("data", "vol", 4<<30)
		if err != nil {
			log.Fatal(err)
		}
		job := ecarray.Job{
			Name: name, Op: op, Pattern: ecarray.PatternRandom,
			BlockSize: 4096, QueueDepth: 256,
			Duration: *duration, Seed: 1,
		}
		if prefill {
			img.Prefill() // reads measure a pre-written image, as in §III
			job.Ramp = *duration / 5
		}
		res, err := ecarray.RunJob(cluster, img, job)
		if err != nil {
			log.Fatal(err)
		}
		cluster.Engine().Drain()
		return res
	}
	return outcome{read: run(ecarray.OpRead, true), write: run(ecarray.OpWrite, false)}
}

func main() {
	flag.Parse()
	fmt.Println("running 4KB random workloads (qd=256): 3-Rep vs RS(10,4) ...")
	rep := runScheme("3-Rep", ecarray.ProfileReplicated(3))
	ec := runScheme("RS(10,4)", ecarray.ProfileEC(10, 4))

	ratio := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	norm := func(metric string, r, w, paperR, paperW float64) {
		fmt.Printf("%-24s %8.2f %8.2f   (paper: %s / %s)\n", metric, r, w,
			fmtPaper(paperR), fmtPaper(paperW))
	}
	amp := func(res ecarray.Result, write bool) float64 {
		if write {
			return float64(res.Metrics.DeviceWriteBytes) / float64(res.Bytes)
		}
		return float64(res.Metrics.DeviceReadBytes) / float64(res.Bytes)
	}
	net := func(res ecarray.Result) float64 {
		return float64(res.Metrics.PrivateBytes) / float64(res.Bytes)
	}
	cpu := func(res ecarray.Result) float64 {
		return res.Metrics.UserCPU + res.Metrics.KernelCPU
	}
	ctxMB := func(res ecarray.Result) float64 {
		return float64(res.Metrics.ContextSwitches) / (float64(res.Bytes) / (1 << 20))
	}

	fmt.Println()
	fmt.Println("RS(10,4) normalized to 3-Replication   read    write")
	norm("throughput",
		ratio(ec.read.MBps, rep.read.MBps), ratio(ec.write.MBps, rep.write.MBps), 0.67, 0.14)
	norm("latency",
		ratio(float64(ec.read.MeanLatency), float64(rep.read.MeanLatency)),
		ratio(float64(ec.write.MeanLatency), float64(rep.write.MeanLatency)), 1.5, 7.6)
	norm("CPU utilization",
		ratio(cpu(ec.read), cpu(rep.read)), ratio(cpu(ec.write), cpu(rep.write)), 10.7, 1.9)
	norm("context switches/MB",
		ratio(ctxMB(ec.read), ctxMB(rep.read)), ratio(ctxMB(ec.write), ctxMB(rep.write)), 12.6, 7.1)
	norm("private network/req",
		ratio(net(ec.read), net(rep.read)), ratio(net(ec.write), net(rep.write)), 37.8, 74.7)
	norm("I/O amplification",
		ratio(amp(ec.read, false), amp(rep.read, false)),
		ratio(amp(ec.write, true), amp(rep.write, true)), 10.4, 57.7)

	fmt.Println()
	fmt.Printf("absolute: 3-Rep  read %7.1f MB/s  write %7.1f MB/s\n", rep.read.MBps, rep.write.MBps)
	fmt.Printf("          RS10,4 read %7.1f MB/s  write %7.1f MB/s\n", ec.read.MBps, ec.write.MBps)
}

func fmtPaper(v float64) string { return fmt.Sprintf("%.2g", v) }
