// Failure: demonstrate the repair path the paper's background discusses
// (§II-C): write data to an RS(6,3) pool, fail up to m=3 OSDs, read the
// data back through degraded reads — the primary pulls k surviving chunks,
// builds the recover matrix, and reconstructs the lost shards — and measure
// the repair traffic this pulls over the private network.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ecarray"
)

func main() {
	cfg := ecarray.DefaultConfig()
	cfg.DeviceCapacity = 2 << 30
	cfg.PGsPerPool = 64
	cfg.CarryData = true

	cluster, err := ecarray.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := cluster.CreatePool("data", ecarray.ProfileEC(6, 3))
	if err != nil {
		log.Fatal(err)
	}
	img, err := cluster.CreateImage("data", "vol0", 64<<20)
	if err != nil {
		log.Fatal(err)
	}

	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}

	run := func(name string, fn func(p *ecarray.Proc)) {
		cluster.Engine().RunProc(name, fn)
	}

	run("write", func(p *ecarray.Proc) {
		if err := img.Write(p, 0, payload, int64(len(payload))); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("wrote %d KiB to RS(6,3) pool\n", len(payload)>>10)

	// Baseline read with all shards healthy.
	cluster.ResetMetrics()
	run("healthy-read", func(p *ecarray.Proc) {
		got, err := img.Read(p, 0, int64(len(payload)))
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			log.Fatal("healthy read mismatch")
		}
	})
	healthy := cluster.Metrics()
	fmt.Printf("healthy read:  %.1f KiB over private network (RS-concatenation)\n",
		float64(healthy.PrivateBytes)/1024)

	// Fail three OSDs holding shards of the first object — the maximum
	// RS(6,3) tolerates.
	acting := pool.ActingSet(img.ObjectName(0))
	for _, osd := range acting[:3] {
		cluster.MarkOSDOut(osd)
		fmt.Printf("failed osd%d (host %s)\n", osd, cluster.OSDs()[osd].Node.Name)
	}

	cluster.ResetMetrics()
	run("degraded-read", func(p *ecarray.Proc) {
		got, err := img.Read(p, 0, int64(len(payload)))
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			log.Fatal("degraded read mismatch: reconstruction failed")
		}
	})
	degraded := cluster.Metrics()
	fmt.Printf("degraded read: data verified after reconstructing %d lost shards\n", 3)
	fmt.Printf("               %.1f KiB over private network (repair traffic)\n",
		float64(degraded.PrivateBytes)/1024)
	if healthy.PrivateBytes > 0 {
		fmt.Printf("               %.2fx the healthy read's traffic: an EC read always pulls\n"+
			"               k chunks, so online reads already pay repair-like traffic\n"+
			"               (the paper's RS-concatenation observation); a replicated read\n"+
			"               would have used the private network for none of this\n",
			float64(degraded.PrivateBytes)/float64(healthy.PrivateBytes))
	}

	// Background recovery: rebuild the lost shards onto replacement OSDs
	// chosen by CRUSH, restoring full redundancy.
	cluster.ResetMetrics()
	var st ecarray.RecoveryStats
	run("recover", func(p *ecarray.Proc) {
		var rerr error
		st, rerr = pool.Recover(p)
		if rerr != nil {
			log.Fatal(rerr)
		}
	})
	fmt.Printf("recovery:      repaired %d PGs, rebuilt %d shards (%.1f MiB) in %v simulated\n",
		st.PGsRepaired, st.ShardsRebuilt, float64(st.BytesRebuilt)/(1<<20), st.DurationSimulated)
	fmt.Printf("               pulled %.1f MiB to rebuild %.1f MiB — the paper's k-fold repair traffic\n",
		float64(st.BytesPulled)/(1<<20), float64(st.BytesRebuilt)/(1<<20))

	run("verify-after-recovery", func(p *ecarray.Proc) {
		got, err := img.Read(p, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			log.Fatal("post-recovery verification failed")
		}
	})
	fmt.Println("               data verified on the recovered layout")

	// A further m+1 failures exceed the restored tolerance: reads refuse.
	acting = pool.ActingSet(img.ObjectName(0))
	for _, osd := range acting[:4] {
		cluster.MarkOSDOut(osd)
	}
	run("too-degraded", func(p *ecarray.Proc) {
		if _, err := img.Read(p, 0, 4096); err != nil {
			fmt.Printf("m+1 failures: read correctly refused (%v)\n", err)
		} else {
			log.Fatal("read beyond fault tolerance unexpectedly succeeded")
		}
	})

	cluster.Stop()
	cluster.Engine().Run()
}
