// Failure: drive the repair paths the paper's background discusses (§II-C)
// through the Scenario API: a foreground read job runs across three phases
// while OSDs fail mid-run and background recovery rebuilds the lost shards
// — with every byte really carried, so degraded reads prove the recover
// matrix works. The per-phase results expose the reconstruction tax and
// the repair traffic of §IV-E. The tail of the example exercises the
// transient-outage path (writes during an outage, restore, paced backfill
// of only the divergent objects) and a deep scrub repairing an injected
// latent shard error.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ecarray"
)

func main() {
	cfg := ecarray.DefaultConfig()
	cfg.DeviceCapacity = 2 << 30
	cfg.PGsPerPool = 64
	cfg.CarryData = true

	cluster, err := ecarray.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := cluster.CreatePool("data", ecarray.ProfileEC(6, 3))
	if err != nil {
		log.Fatal(err)
	}
	img, err := cluster.CreateImage("data", "vol0", 64<<20)
	if err != nil {
		log.Fatal(err)
	}

	// Write a recognizable payload through the full coding pipeline.
	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	cluster.Engine().RunProc("write", func(p *ecarray.Proc) {
		if err := img.Write(p, 0, payload, int64(len(payload))); err != nil {
			log.Fatal(err)
		}
	})
	img.Prefill() // remaining objects initialized for the read job
	fmt.Printf("wrote %d KiB to RS(6,3) pool\n", len(payload)>>10)

	// Fail three OSDs holding shards of the first object — the maximum
	// RS(6,3) tolerates — at the first phase boundary; start recovery at
	// the second.
	acting := pool.ActingSet(img.ObjectName(0))
	const phase = 400 * time.Millisecond
	sc := ecarray.NewScenario(cluster).
		AddJob(img, ecarray.Job{
			Name: "reader", Op: ecarray.OpRead, Pattern: ecarray.PatternRandom,
			BlockSize: 8 << 10, QueueDepth: 16, Duration: 3 * phase, Seed: 1,
		}).
		Phase("healthy", phase).
		Phase("degraded", phase).
		Phase("recovering", phase).
		At(2*phase, ecarray.StartRecovery("data"))
	for _, osd := range acting[:3] {
		sc.At(phase, ecarray.FailOSD(osd))
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}

	reader := res.Job("reader")
	if reader.Result.Errors != 0 {
		log.Fatalf("reads failed: %d errors", reader.Result.Errors)
	}
	fmt.Printf("\n%-12s %10s %10s %14s\n", "phase", "MB/s", "lat ms", "privnet/req")
	for i, pr := range reader.Phases {
		perReq := 0.0
		if pr.Bytes > 0 {
			perReq = float64(res.PhaseMetrics[i].PrivateBytes) / float64(pr.Bytes)
		}
		fmt.Printf("%-12s %10.1f %10.2f %14.2f\n",
			res.Phases[i].Name, pr.MBps, float64(pr.MeanLatency)/1e6, perReq)
	}
	fmt.Println("\nan EC read always pulls k chunks, so online reads already pay repair-like")
	fmt.Println("traffic (the paper's RS-concatenation observation); failed OSDs add the")
	fmt.Println("recover-matrix reconstruction, and the recovery phase stacks repair pulls on top")

	for _, rec := range res.Recoveries {
		if rec.Err != nil {
			log.Fatal(rec.Err)
		}
		fmt.Printf("\nrecovery: repaired %d PGs, rebuilt %d shards (%.1f MiB) in %v simulated\n",
			rec.Stats.PGsRepaired, rec.Stats.ShardsRebuilt,
			float64(rec.Stats.BytesRebuilt)/(1<<20), rec.Stats.DurationSimulated)
		fmt.Printf("          pulled %.1f MiB to rebuild %.1f MiB — the paper's k-fold repair traffic\n",
			float64(rec.Stats.BytesPulled)/(1<<20), float64(rec.Stats.BytesRebuilt)/(1<<20))
	}

	fmt.Println("\nevent log:")
	for _, ev := range res.Events {
		fmt.Printf("  %v\n", ev)
	}

	// The payload must read back intact on the recovered layout.
	cluster.Engine().RunProc("verify", func(p *ecarray.Proc) {
		got, err := img.Read(p, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			log.Fatal("post-recovery verification failed")
		}
	})
	fmt.Println("\ndata verified on the recovered layout")

	// Transient outage with writes: the victim OSD returns holding stale
	// shards. Re-admission marks its divergent positions backfilling (reads
	// reconstruct around them), and a backfill pass re-syncs exactly the
	// objects written during the outage.
	victim := pool.ActingSet(img.ObjectName(0))[3]
	cluster.MarkOSDOut(victim)
	for i := range payload[:256<<10] {
		payload[i] = byte(i*17 + 3) // diverge the first object's contents
	}
	cluster.Engine().RunProc("outage-write", func(p *ecarray.Proc) {
		if err := img.Write(p, 0, payload[:256<<10], 256<<10); err != nil {
			log.Fatal(err)
		}
	})
	cluster.MarkOSDIn(victim)
	fmt.Printf("\nosd%d failed, 256 KiB rewritten, osd%d restored: %d PGs backfilling\n",
		victim, victim, pool.Backfilling())

	// Before backfill the stale shard must not be served: reads reconstruct
	// around the backfilling position and still see the new bytes.
	cluster.Engine().RunProc("stale-check", func(p *ecarray.Proc) {
		got, err := img.Read(p, 0, 256<<10)
		if err != nil || !bytes.Equal(got, payload[:256<<10]) {
			log.Fatal("read served stale shard contents before backfill")
		}
	})
	fmt.Println("pre-backfill reads reconstruct around the stale shard: data correct")

	cluster.Engine().RunProc("backfill", func(p *ecarray.Proc) {
		st, err := pool.Backfill(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("backfill: %d PGs, %d objects re-synced (%.1f MiB) in %v simulated\n",
			st.PGsBackfilled, st.ObjectsSynced,
			float64(st.BytesRestored)/(1<<20), st.DurationSimulated)
	})
	cluster.Engine().RunProc("post-backfill-verify", func(p *ecarray.Proc) {
		got, err := img.Read(p, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			log.Fatal("post-backfill verification failed")
		}
	})
	fmt.Printf("data verified after backfill; %d PGs still backfilling\n", pool.Backfilling())

	// Latent shard error: corrupt a data chunk silently, then deep-scrub.
	if err := pool.InjectLatentError(img.ObjectName(0), 1); err != nil {
		log.Fatal(err)
	}
	cluster.Engine().RunProc("scrub", func(p *ecarray.Proc) {
		st, err := pool.Scrub(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nscrub: %d objects scanned, %d latent errors found, %d shards repaired\n",
			st.ObjectsScanned, st.ErrorsFound, st.ShardsRepaired)
	})
	cluster.Engine().RunProc("post-scrub-verify", func(p *ecarray.Proc) {
		got, err := img.Read(p, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			log.Fatal("post-scrub verification failed")
		}
	})
	fmt.Println("data verified after scrub repair")

	// A further m+1 failures exceed the restored tolerance: reads refuse.
	acting = pool.ActingSet(img.ObjectName(0))
	for _, osd := range acting[:4] {
		cluster.MarkOSDOut(osd)
	}
	cluster.Engine().RunProc("too-degraded", func(p *ecarray.Proc) {
		if _, err := img.Read(p, 0, 4096); err != nil {
			fmt.Printf("m+1 failures: read correctly refused (%v)\n", err)
		} else {
			log.Fatal("read beyond fault tolerance unexpectedly succeeded")
		}
	})

	cluster.Stop()
	cluster.Engine().Run()
}
