// Command ecstored is the shard-store daemon: one per OSD, serving the
// BlobNode side of the service split over HTTP. The gateway (ecgate)
// speaks to a fleet of these through service.OSDClient.
//
// Usage:
//
//	ecstored -listen :7411 -id 0 -backend mem
//	ecstored -listen :7412 -id 1 -backend sim -device-mb 256 -seed 1
//	ecstored -listen :7413 -id 2 -backend mem -max-inflight 128
//
// Backends:
//
//	mem  in-memory shard map (default; fast, volatile)
//	sim  one simulated SSD + BlueStore-style store on a discrete-event
//	     engine, so shard ops carry a simulated service-time cost
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"

	"ecarray/internal/qos"
	"ecarray/internal/service"
)

func main() {
	var (
		listen   = flag.String("listen", ":7411", "HTTP listen address")
		id       = flag.Int("id", 0, "OSD id (matches the gateway's placement index)")
		backend  = flag.String("backend", "mem", "shard store backend: mem | sim")
		host     = flag.String("host", "", "failure-domain host label (default nodeN)")
		deviceMB = flag.Int64("device-mb", 256, "sim backend: device capacity in MiB")
		seed     = flag.Int64("seed", 1, "device / fault-injection RNG seed")
		inflight = flag.Int("max-inflight", 0, "shard-request admission bound; 0 = unlimited, excess gets 429")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	hostLabel := *host
	if hostLabel == "" {
		hostLabel = fmt.Sprintf("node%d", *id)
	}

	var st service.ShardStore
	switch *backend {
	case "mem":
		ms := service.NewMemStore(*id)
		ms.SetHost(hostLabel)
		st = ms
	case "sim":
		vc, err := service.NewSimCluster(service.SimClusterConfig{
			Hosts: 1, OSDsPerHost: 1, DeviceBytes: *deviceMB << 20, Seed: *seed,
		})
		if err != nil {
			logger.Error("sim backend", "error", err.Error())
			os.Exit(1)
		}
		st = vc.Stores()[0]
	default:
		logger.Error("unknown backend", "backend", *backend)
		os.Exit(1)
	}

	// Wrap the store so this daemon exposes the /v1/faults admin surface:
	// chaos drivers can inject shard-level errors, latency and partitions
	// without restarting it.
	st = service.NewFaultStore(st, *id, *seed)

	srv := service.NewOSDServer(*id, st, logger)
	h := srv.Handler()
	if *inflight > 0 {
		// Bound concurrent shard work; the gateway classifies the resulting
		// 429s as transient and retries against the other replicas/shards.
		h = service.AdmissionMiddleware(qos.NewMaxInflight(*inflight), h)
	}
	logger.Info("ecstored listening",
		"addr", *listen, "osd", *id, "backend", *backend, "host", hostLabel,
		"max_inflight", *inflight)
	if err := http.ListenAndServe(*listen, h); err != nil {
		logger.Error("serve", "error", err.Error())
		os.Exit(1)
	}
}
