// Command ecbench reproduces the paper's evaluation on the simulated
// cluster: single figures as aligned tables, composed fault scenarios,
// mechanism ablations, and full paper-scale sweep campaigns serialized as
// machine-readable BENCH_*.json reports.
//
// Usage:
//
//	ecbench [-fig all|fig1|fig5|...|fig20] [-scale smoke|quick|paper]
//	        [-ablations] [-scenarios]
//	        [-sweep] [-out BENCH.json] [-shard i/n]
//	        [-compare old.json new.json]
//	        [-merge merged.json shard0.json shard1.json ...]
//	        [-duration 8s] [-image 32] [-qd 256] [-csvdir out/]
//	        [-codec-kernel auto|scalar|avx2|fused|gfni] [-codec-conc n]
//	        [-calibrate]
//
// Modes (mutually exclusive; combining them is a usage error):
//
//	(default)  reproduce figures (-fig selects one)
//	-scenarios composed fault/recovery experiments
//	-ablations mechanism ablations
//	-sweep     run the -scale sweep grid and write a BenchReport JSON
//	           (-out names the file, default BENCH_<sha>.json; -shard i/n
//	           runs every n-th cell for CI matrix legs). -out or -shard
//	           alone imply -sweep.
//	-compare   diff two reports with noise-aware thresholds; exits 1 on
//	           regression — the CI gate
//	-merge     merge shard reports into one (first argument is the output)
//
// Scale "paper" is the full campaign — 52-OSD array, 1KB..128KB blocks,
// stripe-unit and codec-kernel axes (hours serially; shard it); "quick"
// is a reduced sweep for iteration; "smoke" finishes in tens of seconds
// and is what CI runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ecarray/internal/bench"
	"ecarray/internal/gf"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce (fig1, fig5..fig20, or all)")
	ablations := flag.Bool("ablations", false, "run the mechanism ablations instead of figures")
	scenarios := flag.Bool("scenarios", false, "run the composed fault/recovery scenarios instead of figures")
	sweep := flag.Bool("sweep", false, "run the -scale sweep grid and emit a BenchReport JSON")
	out := flag.String("out", "", "sweep report output path (implies -sweep; default BENCH_<sha>.json)")
	shard := flag.String("shard", "", "run shard i of n sweep cells, as \"i/n\" (implies -sweep)")
	compare := flag.Bool("compare", false, "compare two reports: ecbench -compare old.json new.json")
	merge := flag.Bool("merge", false, "merge shard reports: ecbench -merge merged.json shard.json...")
	scale := flag.String("scale", "quick", "preset: smoke, quick or paper")
	duration := flag.Duration("duration", 0, "override measurement window per run")
	imageGiB := flag.Int64("image", 0, "override image size in GiB")
	qd := flag.Int("qd", 0, "override queue depth")
	csvdir := flag.String("csvdir", "", "also write each table as CSV into this directory")
	codecKernel := flag.String("codec-kernel", "auto",
		"GF kernel tier for the RS codec: auto, scalar, avx2 (alias vector), fused or gfni")
	codecConc := flag.Int("codec-conc", 0, "max codec worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	calibrate := flag.Bool("calibrate", false, "derive simulated encode cost from the real codec's measured MB/s")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	thrMBps := flag.Float64("thr-mbps", 0, "compare: max fractional per-cell throughput drop (0 = default 0.10)")
	thrLatency := flag.Float64("thr-latency", 0, "compare: max fractional per-cell latency rise (0 = default 0.15)")
	thrEvents := flag.Float64("thr-events", 0, "compare: max fractional engine events/sec drop (0 = default 0.50)")
	flag.Parse()

	// Mode resolution and conflict detection: silently ignoring one of two
	// contradictory flags produced confusing half-runs, so contradictions
	// are now usage errors.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	mode, err := chooseMode(modeFlags{
		FigSet:    explicit["fig"],
		Ablations: *ablations,
		Scenarios: *scenarios,
		Sweep:     *sweep || *out != "" || *shard != "",
		Compare:   *compare,
		Merge:     *merge,
	})
	if err != nil {
		usageError(err)
	}
	switch mode {
	case "compare":
		if flag.NArg() != 2 {
			usageError(fmt.Errorf("-compare takes exactly two report paths, got %d", flag.NArg()))
		}
	case "merge":
		if flag.NArg() < 2 {
			usageError(fmt.Errorf("-merge takes an output path and at least one input report, got %d args", flag.NArg()))
		}
	default:
		if flag.NArg() != 0 {
			usageError(fmt.Errorf("unexpected arguments: %v", flag.Args()))
		}
	}
	if (*thrMBps != 0 || *thrLatency != 0 || *thrEvents != 0) && mode != "compare" {
		usageError(fmt.Errorf("-thr-* flags only apply to -compare"))
	}
	if *csvdir != "" && (mode == "compare" || mode == "merge" || mode == "sweep") {
		usageError(fmt.Errorf("-csvdir does not apply to -%s (sweep output is the JSON report)", mode))
	}
	if mode == "sweep" && explicit["codec-kernel"] {
		usageError(fmt.Errorf("-codec-kernel does not apply to -sweep: the kernel is a grid axis, set per cell by the preset"))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() exits without running defers; register the flush there so
		// a failing run still leaves a usable profile.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	switch mode {
	case "compare":
		runCompare(flag.Arg(0), flag.Arg(1), bench.Thresholds{
			ThroughputDropFrac:   *thrMBps,
			LatencyRiseFrac:      *thrLatency,
			EventsPerSecDropFrac: *thrEvents,
		})
		return
	case "merge":
		runMerge(flag.Arg(0), flag.Args()[1:])
		return
	}

	kern, ok := gf.ParseKernel(*codecKernel)
	if !ok {
		usageError(fmt.Errorf("unknown codec kernel %q", *codecKernel))
	}
	gf.SetKernel(kern)

	var opt bench.Options
	var grid bench.Grid
	if mode == "sweep" {
		opt, grid, err = bench.SweepPreset(*scale)
		if err != nil {
			usageError(err)
		}
	} else {
		switch *scale {
		case "smoke":
			opt = bench.Smoke()
		case "quick":
			opt = bench.Quick()
		case "paper":
			opt = bench.Paper()
		default:
			usageError(fmt.Errorf("unknown scale %q", *scale))
		}
	}
	if *duration > 0 {
		opt.Duration = *duration
	}
	if *imageGiB > 0 {
		opt.ImageSize = *imageGiB << 30
	}
	if *qd > 0 {
		opt.QueueDepth = *qd
	}
	opt.CodecConcurrency = *codecConc
	opt.CodecKernel = *codecKernel
	opt.CalibrateEncode = *calibrate
	if *calibrate {
		workers := opt.CodecConcurrency
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("codec: kernel=%s (avx2=%v gfni=%v) workers=%d (encode cost calibrated from measured MB/s; tables note the producing kernel)\n",
			gf.ActiveKernel(), gf.Accelerated(), gf.HasGFNI(), workers)
	}

	suite, err := bench.NewSuite(opt)
	if err != nil {
		fatal(err)
	}

	if mode == "sweep" {
		runSweep(suite, *scale, grid, *shard, *out)
		return
	}

	var tables []bench.Table
	start := time.Now()
	switch {
	case mode == "scenarios":
		tables, err = suite.RunAllScenarios()
	case mode == "ablations":
		tables, err = suite.RunAllAblations()
	case *fig == "all":
		tables, err = suite.RunAll()
	default:
		tables, err = suite.RunFigure(*fig)
	}
	if err != nil {
		fatal(err)
	}

	for _, t := range tables {
		fmt.Println(t.Format())
	}
	fmt.Printf("reproduced %d table(s) in %s (simulated window %s per run)\n",
		len(tables), time.Since(start).Round(time.Second), opt.Duration)
	if line := suite.EngineReport(); line != "" {
		fmt.Println(line)
	}

	if *csvdir != "" {
		if err := os.MkdirAll(*csvdir, 0o755); err != nil {
			fatal(err)
		}
		for _, t := range tables {
			name := filepath.Join(*csvdir, strings.ReplaceAll(t.ID, "/", "_")+".csv")
			if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d CSV files to %s\n", len(tables), *csvdir)
	}
}

// modeFlags captures which mode-selecting flags the user set.
type modeFlags struct {
	FigSet    bool // -fig passed explicitly
	Ablations bool
	Scenarios bool
	Sweep     bool // -sweep, -out or -shard
	Compare   bool
	Merge     bool
}

// chooseMode resolves the run mode, rejecting contradictory combinations
// (e.g. -compare with -scenarios) instead of silently ignoring one.
func chooseMode(f modeFlags) (string, error) {
	var picked []string
	if f.Ablations {
		picked = append(picked, "ablations")
	}
	if f.Scenarios {
		picked = append(picked, "scenarios")
	}
	if f.Sweep {
		picked = append(picked, "sweep")
	}
	if f.Compare {
		picked = append(picked, "compare")
	}
	if f.Merge {
		picked = append(picked, "merge")
	}
	switch len(picked) {
	case 0:
		return "figures", nil
	case 1:
		if f.FigSet && picked[0] != "figures" {
			return "", fmt.Errorf("-fig cannot be combined with -%s", picked[0])
		}
		return picked[0], nil
	}
	return "", fmt.Errorf("conflicting modes: -%s", strings.Join(picked, " and -"))
}

// parseShard parses "i/n" into (i, n). An empty string is the whole grid.
func parseShard(s string) (idx, count int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard %q is not of the form i/n", s)
	}
	idx, err = strconv.Atoi(i)
	if err != nil {
		return 0, 0, fmt.Errorf("shard index %q: %v", i, err)
	}
	count, err = strconv.Atoi(n)
	if err != nil {
		return 0, 0, fmt.Errorf("shard count %q: %v", n, err)
	}
	if count <= 0 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("shard %d/%d out of range", idx, count)
	}
	return idx, count, nil
}

// gitSHA best-efforts the current commit for report provenance: the CI
// environment first, then the repository itself.
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// runSweep executes the sweep grid (or one shard of it) and writes the
// report JSON.
func runSweep(suite *bench.Suite, preset string, grid bench.Grid, shardSpec, outPath string) {
	shardIdx, shardCount, err := parseShard(shardSpec)
	if err != nil {
		usageError(err)
	}
	sha := gitSHA()
	if outPath == "" {
		short := sha
		if len(short) > 12 {
			short = short[:12]
		}
		outPath = fmt.Sprintf("BENCH_%s.json", short)
	}
	start := time.Now()
	report, err := suite.RunSweep(preset, grid, shardIdx, shardCount, func(done, total int, id string) {
		fmt.Printf("[%d/%d] %s\n", done, total, id)
	})
	if err != nil {
		fatal(err)
	}
	report.GitSHA = sha
	t := report.Summary()
	fmt.Println(t.Format())
	if line := suite.EngineReport(); line != "" {
		fmt.Println(line)
	}
	if err := report.WriteFile(outPath); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d cell(s) to %s in %s (shard %d/%d)\n",
		len(report.Cells), outPath, time.Since(start).Round(time.Second), shardIdx, shardCount)
}

// runCompare diffs two reports and exits non-zero on regression: the CI
// gate behind the bench trajectory.
func runCompare(oldPath, newPath string, th bench.Thresholds) {
	old, err := bench.LoadReport(oldPath)
	if err != nil {
		fatal(err)
	}
	new, err := bench.LoadReport(newPath)
	if err != nil {
		fatal(err)
	}
	res, err := bench.CompareReports(old, new, th)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	if !res.Ok() {
		os.Exit(1)
	}
}

// runMerge combines shard reports into one.
func runMerge(outPath string, inputs []string) {
	var reports []*bench.BenchReport
	for _, path := range inputs {
		r, err := bench.LoadReport(path)
		if err != nil {
			fatal(err)
		}
		reports = append(reports, r)
	}
	merged, err := bench.MergeReports(reports...)
	if err != nil {
		fatal(err)
	}
	if err := merged.WriteFile(outPath); err != nil {
		fatal(err)
	}
	fmt.Printf("merged %d report(s), %d cell(s) -> %s (digest %s)\n",
		len(reports), len(merged.Cells), outPath, merged.DeterministicDigest())
}

// usageError prints the message plus usage and exits 2, the conventional
// bad-invocation status.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "ecbench:", err)
	flag.Usage()
	os.Exit(2)
}

// stopProfile flushes an active CPU profile; fatal runs it because os.Exit
// skips deferred calls.
var stopProfile = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecbench:", err)
	stopProfile()
	os.Exit(1)
}
