// Command ecbench reproduces the paper's evaluation figures on the
// simulated cluster and prints each as an aligned table (optionally CSV).
//
// Usage:
//
//	ecbench [-fig all|fig1|fig5|...|fig20] [-scale quick|paper]
//	        [-ablations] [-scenarios]
//	        [-duration 8s] [-image 32] [-qd 256] [-csvdir out/]
//	        [-codec-kernel auto|scalar|avx2|fused|gfni] [-codec-conc n]
//	        [-calibrate]
//
// -scenarios runs the composed fault experiments (degraded reads across
// failure and recovery, repair-throttle interference, mixed tenants) built
// on the Scenario API instead of the single-job figures.
//
// Scale "paper" runs the full 1KB..128KB sweep with long windows (minutes
// of wall time); "quick" runs a reduced sweep for fast iteration.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ecarray/internal/bench"
	"ecarray/internal/gf"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce (fig1, fig5..fig20, or all)")
	ablations := flag.Bool("ablations", false, "run the mechanism ablations instead of figures")
	scenarios := flag.Bool("scenarios", false, "run the composed fault/recovery scenarios instead of figures")
	scale := flag.String("scale", "quick", "preset: quick or paper")
	duration := flag.Duration("duration", 0, "override measurement window per run")
	imageGiB := flag.Int64("image", 0, "override image size in GiB")
	qd := flag.Int("qd", 0, "override queue depth")
	csvdir := flag.String("csvdir", "", "also write each table as CSV into this directory")
	codecKernel := flag.String("codec-kernel", "auto",
		"GF kernel tier for the RS codec: auto, scalar, avx2 (alias vector), fused or gfni")
	codecConc := flag.Int("codec-conc", 0, "max codec worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	calibrate := flag.Bool("calibrate", false, "derive simulated encode cost from the real codec's measured MB/s")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() exits without running defers; register the flush there so
		// a failing run still leaves a usable profile.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	kern, ok := gf.ParseKernel(*codecKernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "ecbench: unknown codec kernel %q\n", *codecKernel)
		os.Exit(2)
	}
	gf.SetKernel(kern)

	var opt bench.Options
	switch *scale {
	case "quick":
		opt = bench.Quick()
	case "paper":
		opt = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "ecbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *duration > 0 {
		opt.Duration = *duration
	}
	if *imageGiB > 0 {
		opt.ImageSize = *imageGiB << 30
	}
	if *qd > 0 {
		opt.QueueDepth = *qd
	}
	opt.CodecConcurrency = *codecConc
	opt.CodecKernel = *codecKernel
	opt.CalibrateEncode = *calibrate
	if *calibrate {
		workers := opt.CodecConcurrency
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("codec: kernel=%s (avx2=%v gfni=%v) workers=%d (encode cost calibrated from measured MB/s; tables note the producing kernel)\n",
			gf.ActiveKernel(), gf.Accelerated(), gf.HasGFNI(), workers)
	}

	suite, err := bench.NewSuite(opt)
	if err != nil {
		fatal(err)
	}

	var tables []bench.Table
	start := time.Now()
	switch {
	case *scenarios:
		tables, err = suite.RunAllScenarios()
	case *ablations:
		tables, err = suite.RunAllAblations()
	case *fig == "all":
		tables, err = suite.RunAll()
	default:
		tables, err = suite.RunFigure(*fig)
	}
	if err != nil {
		fatal(err)
	}

	for _, t := range tables {
		fmt.Println(t.Format())
	}
	fmt.Printf("reproduced %d table(s) in %s (simulated window %s per run)\n",
		len(tables), time.Since(start).Round(time.Second), opt.Duration)
	if line := suite.EngineReport(); line != "" {
		fmt.Println(line)
	}

	if *csvdir != "" {
		if err := os.MkdirAll(*csvdir, 0o755); err != nil {
			fatal(err)
		}
		for _, t := range tables {
			name := filepath.Join(*csvdir, strings.ReplaceAll(t.ID, "/", "_")+".csv")
			if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d CSV files to %s\n", len(tables), *csvdir)
	}
}

// stopProfile flushes an active CPU profile; fatal runs it because os.Exit
// skips deferred calls.
var stopProfile = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecbench:", err)
	stopProfile()
	os.Exit(1)
}
