package main

import "testing"

func TestChooseMode(t *testing.T) {
	ok := []struct {
		f    modeFlags
		want string
	}{
		{modeFlags{}, "figures"},
		{modeFlags{FigSet: true}, "figures"},
		{modeFlags{Scenarios: true}, "scenarios"},
		{modeFlags{Ablations: true}, "ablations"},
		{modeFlags{Sweep: true}, "sweep"},
		{modeFlags{Compare: true}, "compare"},
		{modeFlags{Merge: true}, "merge"},
	}
	for _, c := range ok {
		got, err := chooseMode(c.f)
		if err != nil || got != c.want {
			t.Errorf("chooseMode(%+v) = %q, %v; want %q", c.f, got, err, c.want)
		}
	}
	// Contradictory combinations must be usage errors, not silently
	// resolved (the old behaviour ran one mode and ignored the other).
	bad := []modeFlags{
		{Compare: true, Scenarios: true},
		{Compare: true, Sweep: true},
		{Compare: true, Merge: true},
		{Scenarios: true, Ablations: true},
		{Sweep: true, Ablations: true},
		{FigSet: true, Scenarios: true},
		{FigSet: true, Compare: true},
		{FigSet: true, Sweep: true},
		{Compare: true, Scenarios: true, Sweep: true},
	}
	for _, f := range bad {
		if mode, err := chooseMode(f); err == nil {
			t.Errorf("chooseMode(%+v) = %q, want conflict error", f, mode)
		}
	}
}

func TestParseShard(t *testing.T) {
	for _, c := range []struct {
		in         string
		idx, count int
	}{
		{"", 0, 1},
		{"0/1", 0, 1},
		{"0/4", 0, 4},
		{"3/4", 3, 4},
	} {
		idx, count, err := parseShard(c.in)
		if err != nil || idx != c.idx || count != c.count {
			t.Errorf("parseShard(%q) = %d, %d, %v; want %d, %d", c.in, idx, count, err, c.idx, c.count)
		}
	}
	for _, in := range []string{"1", "x/2", "1/x", "2/2", "-1/2", "0/0", "0/-1"} {
		if _, _, err := parseShard(in); err == nil {
			t.Errorf("parseShard(%q) accepted", in)
		}
	}
}
