// Command ecctl inspects the simulated cluster the way ceph CLI tools
// inspect a real one: CRUSH placement dumps, object→PG mappings, and
// per-OSD utilization after a workload.
//
// Usage:
//
//	ecctl crush   [-profile 3rep|rs6.3|rs10.4] [-pgs 64]
//	ecctl map     [-profile ...] -object rbd_data.vol.0000000000000000
//	ecctl osd-df  [-profile ...] [-duration 1s]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ecarray"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	profileName := fs.String("profile", "rs6.3", "pool profile: 3rep, rs6.3, rs10.4")
	pgs := fs.Int("pgs", 32, "placement groups to show (crush) or configure")
	object := fs.String("object", "", "object name (map)")
	duration := fs.Duration("duration", time.Second, "workload length (osd-df)")
	fs.Parse(os.Args[2:]) //nolint:errcheck

	profile, err := parseProfile(*profileName)
	if err != nil {
		fatal(err)
	}

	cfg := ecarray.DefaultConfig()
	cfg.DeviceCapacity = 2 << 30
	cfg.PGsPerPool = max(*pgs, 32)
	cluster, err := ecarray.NewCluster(cfg)
	if err != nil {
		fatal(err)
	}
	pool, err := cluster.CreatePool("data", profile)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "crush":
		fmt.Printf("pool data profile=%s width=%d pgs=%d\n", profile, profile.Width(), pool.PGs())
		for pg := 0; pg < *pgs && pg < pool.PGs(); pg++ {
			// Use a synthetic object that maps to each PG for display; the
			// acting set is a property of the PG itself.
			fmt.Printf("  pg %4d -> %v\n", pg, actingOfPG(pool, pg))
		}
	case "map":
		if *object == "" {
			fatal(fmt.Errorf("map requires -object"))
		}
		set := pool.ActingSet(*object)
		fmt.Printf("object %q\n  pg:      %d\n  acting:  %v (primary osd%d)\n  hosts:   %s\n",
			*object, pool.PGFor(*object), set, set[0], hostsOf(cluster, set))
	case "osd-df":
		img, err := cluster.CreateImage("data", "ecctl", 2<<30)
		if err != nil {
			fatal(err)
		}
		if _, err := ecarray.RunJob(cluster, img, ecarray.Job{
			Name: "ecctl", Op: ecarray.OpWrite, Pattern: ecarray.PatternRandom,
			BlockSize: 16 << 10, QueueDepth: 64, Duration: *duration, Seed: 1,
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("%-6s %-7s %9s %12s %12s %8s %8s\n",
			"osd", "host", "objects", "dev-written", "dev-read", "flashWA", "erases")
		for _, osd := range cluster.OSDs() {
			ds := osd.Store.Device().Stats()
			fmt.Printf("osd%-3d %-7s %9d %11.1fM %11.1fM %8.2f %8d\n",
				osd.ID, osd.Node.Name, osd.Store.Objects(),
				float64(ds.HostWriteBytes)/(1<<20), float64(ds.HostReadBytes)/(1<<20),
				ds.WriteAmplification(), ds.Erases)
		}
	default:
		usage()
	}
}

// actingOfPG reflects a PG's acting set by probing object names until one
// lands on the PG (display helper; acting sets are per-PG).
func actingOfPG(pool *ecarray.Pool, pg int) []int {
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("probe-%d", i)
		if pool.PGFor(name) == pg {
			return pool.ActingSet(name)
		}
	}
	return nil
}

func hostsOf(c *ecarray.Cluster, osds []int) string {
	var hosts []string
	for _, id := range osds {
		hosts = append(hosts, c.OSDs()[id].Node.Name)
	}
	return strings.Join(hosts, ",")
}

func parseProfile(s string) (ecarray.Profile, error) {
	switch s {
	case "3rep":
		return ecarray.ProfileReplicated(3), nil
	case "rs6.3":
		return ecarray.ProfileEC(6, 3), nil
	case "rs10.4":
		return ecarray.ProfileEC(10, 4), nil
	}
	return ecarray.Profile{}, fmt.Errorf("unknown profile %q", s)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ecctl crush|map|osd-df [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecctl:", err)
	os.Exit(1)
}
