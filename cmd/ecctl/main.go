// Command ecctl inspects the simulated cluster the way ceph CLI tools
// inspect a real one: CRUSH placement dumps, object→PG mappings, per-OSD
// utilization after a workload, and composed failure scenarios.
//
// Usage:
//
//	ecctl crush    [-profile 3rep|rs6.3|rs10.4] [-pgs 64]
//	ecctl map      [-profile ...] -object rbd_data.vol.0000000000000000
//	ecctl osd-df   [-profile ...] [-duration 1s]
//	ecctl scenario [-profile ...] [-duration 1s] [-fail 2] [-rate 128]
//	ecctl degrade  [-profile ...] [-duration 1s] [-osd 0]
//	               [-latency-mult 10] [-error-rate 0] [-clear=true]
//
// osd-df drives two concurrent tenants (a writer and a reader) through the
// Scenario API and dumps per-OSD device counters plus each OSD's tracked
// health score. scenario runs the healthy→degraded→recovering timeline —
// fail OSDs mid-run, start a throttled recovery — and prints per-phase
// service metrics plus the cluster event log. degrade runs the gray-failure
// timeline instead: the victim OSD stays up but serves with the given
// latency multiplier and intermittent-error rate while the tail-tolerant
// read path (deadlines, hedges, the health breaker) routes around it;
// -clear=false leaves the fault in place instead of restoring health at
// the last phase boundary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ecarray"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	profileName := fs.String("profile", "rs6.3", "pool profile: 3rep, rs6.3, rs10.4")
	pgs := fs.Int("pgs", 32, "placement groups to show (crush) or configure")
	object := fs.String("object", "", "object name (map)")
	duration := fs.Duration("duration", time.Second, "workload length (osd-df), phase length (scenario)")
	failN := fs.Int("fail", 2, "OSDs to fail mid-run (scenario)")
	rateMiB := fs.Int64("rate", 0, "recovery throttle in MiB/s, 0 = unthrottled (scenario)")
	victim := fs.Int("osd", 0, "OSD to degrade (degrade)")
	latMult := fs.Float64("latency-mult", 10, "device latency multiplier, 1 = healthy (degrade)")
	errRate := fs.Float64("error-rate", 0, "intermittent I/O error probability (degrade)")
	clear := fs.Bool("clear", true, "restore the OSD's health at the last phase boundary (degrade)")
	fs.Parse(os.Args[2:]) //nolint:errcheck

	profile, err := parseProfile(*profileName)
	if err != nil {
		fatal(err)
	}

	cfg := ecarray.DefaultConfig()
	cfg.DeviceCapacity = 2 << 30
	cfg.PGsPerPool = max(*pgs, 32)
	if cmd == "osd-df" || cmd == "degrade" {
		// Health scores only accumulate on the tail-tolerant read path.
		cfg.Gray = ecarray.DefaultGrayConfig()
	}
	cluster, err := ecarray.NewCluster(cfg)
	if err != nil {
		fatal(err)
	}
	pool, err := cluster.CreatePool("data", profile)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "crush":
		fmt.Printf("pool data profile=%s width=%d pgs=%d\n", profile, profile.Width(), pool.PGs())
		for pg := 0; pg < *pgs && pg < pool.PGs(); pg++ {
			// Use a synthetic object that maps to each PG for display; the
			// acting set is a property of the PG itself.
			fmt.Printf("  pg %4d -> %v\n", pg, actingOfPG(pool, pg))
		}
	case "map":
		if *object == "" {
			fatal(fmt.Errorf("map requires -object"))
		}
		set := pool.ActingSet(*object)
		fmt.Printf("object %q\n  pg:      %d\n  acting:  %v (primary osd%d)\n  hosts:   %s\n",
			*object, pool.PGFor(*object), set, set[0], hostsOf(cluster, set))
	case "osd-df":
		osdDF(cluster, *duration)
	case "scenario":
		runScenario(cluster, *duration, *failN, *rateMiB)
	case "degrade":
		runDegrade(cluster, *duration, *victim, *latMult, *errRate, *clear)
	default:
		usage()
	}
}

// osdDF runs two concurrent tenants through the Scenario API — a random
// writer and a random reader on separate images — then dumps per-OSD
// utilization, so the dump reflects a realistically mixed load.
func osdDF(cluster *ecarray.Cluster, duration time.Duration) {
	wImg, err := cluster.CreateImage("data", "ecctl-w", 2<<30)
	if err != nil {
		fatal(err)
	}
	rImg, err := cluster.CreateImage("data", "ecctl-r", 2<<30)
	if err != nil {
		fatal(err)
	}
	rImg.Prefill()
	if _, err := ecarray.NewScenario(cluster).
		AddJob(wImg, ecarray.Job{
			Name: "writer", Op: ecarray.OpWrite, Pattern: ecarray.PatternRandom,
			BlockSize: 16 << 10, QueueDepth: 32, Duration: duration, Seed: 1,
		}).
		AddJob(rImg, ecarray.Job{
			Name: "reader", Op: ecarray.OpRead, Pattern: ecarray.PatternRandom,
			BlockSize: 16 << 10, QueueDepth: 32, Duration: duration, Seed: 2,
		}).
		Run(); err != nil {
		fatal(err)
	}
	fmt.Printf("%-6s %-7s %9s %12s %12s %8s %8s %7s %9s %8s\n",
		"osd", "host", "objects", "dev-written", "dev-read", "flashWA", "erases",
		"health", "ewma-lat", "samples")
	for _, osd := range cluster.OSDs() {
		ds := osd.Store.Device().Stats()
		h := cluster.OSDHealth(osd.ID)
		flags := ""
		if h.Slow {
			flags = " SLOW"
		}
		if h.Ejected {
			flags += " EJECTED"
		}
		fmt.Printf("osd%-3d %-7s %9d %11.1fM %11.1fM %8.2f %8d %7.3f %8.0fµ %8d%s\n",
			osd.ID, osd.Node.Name, osd.Store.Objects(),
			float64(ds.HostWriteBytes)/(1<<20), float64(ds.HostReadBytes)/(1<<20),
			ds.WriteAmplification(), ds.Erases,
			h.Score, float64(h.EWMALatency)/1e3, h.Samples, flags)
	}
}

// runScenario composes the fault timeline: a foreground reader across
// healthy/degraded/recovering phases, failN OSDs failing at the first
// boundary and a (optionally throttled) repair pass at the second.
func runScenario(cluster *ecarray.Cluster, phase time.Duration, failN int, rateMiB int64) {
	img, err := cluster.CreateImage("data", "ecctl", 2<<30)
	if err != nil {
		fatal(err)
	}
	img.Prefill()
	sc := ecarray.NewScenario(cluster).
		AddJob(img, ecarray.Job{
			Name: "fg", Op: ecarray.OpRead, Pattern: ecarray.PatternRandom,
			BlockSize: 4 << 10, QueueDepth: 64, Duration: 3 * phase, Seed: 1,
		}).
		Phase("healthy", phase).
		Phase("degraded", phase).
		Phase("recovering", phase).
		At(2*phase, ecarray.StartRecovery("data"))
	for i := 0; i < failN; i++ {
		sc.At(phase, ecarray.FailOSD(i))
	}
	if rateMiB > 0 {
		sc.At(2*phase, ecarray.SetRecoveryRate("data", rateMiB<<20))
	}
	res, err := sc.Run()
	if err != nil {
		fatal(err)
	}

	fg := res.Job("fg")
	fmt.Printf("%-12s %10s %10s %10s %14s\n", "phase", "MB/s", "lat ms", "p99 ms", "privnet/req")
	for i, pr := range fg.Phases {
		perReq := 0.0
		if pr.Bytes > 0 {
			perReq = float64(res.PhaseMetrics[i].PrivateBytes) / float64(pr.Bytes)
		}
		fmt.Printf("%-12s %10.1f %10.2f %10.2f %14.2f\n",
			res.Phases[i].Name, pr.MBps,
			float64(pr.MeanLatency)/1e6, float64(pr.P99Latency)/1e6, perReq)
	}
	for _, rec := range res.Recoveries {
		if rec.Err != nil {
			fatal(rec.Err)
		}
		fmt.Printf("recovery: %d PGs, %.1f MiB pulled, %.1f MiB rebuilt, %v simulated\n",
			rec.Stats.PGsRepaired, float64(rec.Stats.BytesPulled)/(1<<20),
			float64(rec.Stats.BytesRebuilt)/(1<<20), rec.Stats.DurationSimulated)
	}
	fmt.Println("events:")
	for _, ev := range res.Events {
		fmt.Printf("  %v\n", ev)
	}
}

// runDegrade composes the gray-failure timeline: a foreground reader runs
// healthy, then the victim OSD starts serving slow and/or flaky while
// staying up, and (with -clear) has its health restored at the last phase
// boundary. The per-phase gray counters show the tail-tolerant path
// reacting: timeouts, hedges, and — if the fault persists — a breaker
// eject.
func runDegrade(cluster *ecarray.Cluster, phase time.Duration, victim int, latMult, errRate float64, clear bool) {
	img, err := cluster.CreateImage("data", "ecctl", 2<<30)
	if err != nil {
		fatal(err)
	}
	img.Prefill()
	deg := ecarray.OSDDegradation{Device: ecarray.DeviceDegradation{
		LatencyMultiplier: latMult,
		ErrorProb:         errRate,
	}}
	sc := ecarray.NewScenario(cluster).
		AddJob(img, ecarray.Job{
			Name: "fg", Op: ecarray.OpRead, Pattern: ecarray.PatternRandom,
			BlockSize: 4 << 10, QueueDepth: 64, Duration: 3 * phase, Seed: 1,
		}).
		Phase("healthy", phase).
		Phase("gray", phase).
		Phase("recovered", phase).
		At(phase, ecarray.DegradeOSD(victim, deg))
	if clear {
		sc.At(2*phase, ecarray.RestoreOSDHealth(victim))
	}
	res, err := sc.Run()
	if err != nil {
		fatal(err)
	}

	fg := res.Job("fg")
	fmt.Printf("%-12s %10s %10s %10s %9s %7s %7s\n",
		"phase", "MB/s", "lat ms", "p99 ms", "timeouts", "hedges", "ejects")
	for i, pr := range fg.Phases {
		g := res.PhaseGray[i]
		fmt.Printf("%-12s %10.1f %10.2f %10.2f %9d %7d %7d\n",
			res.Phases[i].Name, pr.MBps,
			float64(pr.MeanLatency)/1e6, float64(pr.P99Latency)/1e6,
			g.ShardTimeouts, g.HedgesIssued, g.Ejects)
	}
	h := cluster.OSDHealth(victim)
	fmt.Printf("osd%d health: score=%.3f ewma-lat=%v samples=%d slow=%v ejected=%v degraded=%v\n",
		victim, h.Score, h.EWMALatency, h.Samples, h.Slow, h.Ejected, h.Degraded)
	fmt.Printf("gray totals: %+v\n", res.GrayMetrics)
	fmt.Println("events:")
	for _, ev := range res.Events {
		fmt.Printf("  %v\n", ev)
	}
}

// actingOfPG reflects a PG's acting set by probing object names until one
// lands on the PG (display helper; acting sets are per-PG).
func actingOfPG(pool *ecarray.Pool, pg int) []int {
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("probe-%d", i)
		if pool.PGFor(name) == pg {
			return pool.ActingSet(name)
		}
	}
	return nil
}

func hostsOf(c *ecarray.Cluster, osds []int) string {
	var hosts []string
	for _, id := range osds {
		hosts = append(hosts, c.OSDs()[id].Node.Name)
	}
	return strings.Join(hosts, ",")
}

func parseProfile(s string) (ecarray.Profile, error) {
	switch s {
	case "3rep":
		return ecarray.ProfileReplicated(3), nil
	case "rs6.3":
		return ecarray.ProfileEC(6, 3), nil
	case "rs10.4":
		return ecarray.ProfileEC(10, 4), nil
	}
	return ecarray.Profile{}, fmt.Errorf("unknown profile %q", s)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ecctl crush|map|osd-df|scenario [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecctl:", err)
	os.Exit(1)
}
