// Command ecgate is the access gateway: the object-facing front door of
// the service split. It encodes PUT bodies into RS(k,m) shards through
// the zero-copy stream codec, places them with CRUSH, and serves GETs
// with transparent degraded-read fallback when OSDs are down or slow.
//
// Server mode:
//
//	ecgate -listen :7310 -backend sim                 # in-process virtual cluster
//	ecgate -listen :7310 -backend mem -hosts 3 -osds-per-host 2
//	ecgate -listen :7310 -backend osd -osd-urls http://h1:7411,http://h2:7411,...
//	ecgate -listen :7310 -tenants gold:3,silver:2,bronze:1   # weighted-fair admission
//
// With -tenants set, admission switches from a flat max-inflight bound
// to weighted-fair queuing keyed by the X-Tenant request header; each
// named tenant gets an inflight share proportional to its weight and
// unnamed tenants share a weight-1 default.
//
// Smoke mode (used by CI) drives a running gateway — and optionally a
// set of ecstored daemons — through a put / degraded-get / delete
// round trip and exits non-zero on any mismatch:
//
//	ecgate -smoke -url http://127.0.0.1:7310 -osd-urls http://127.0.0.1:7411,...
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"ecarray/internal/crush"
	"ecarray/internal/qos"
	"ecarray/internal/service"
)

func main() {
	var (
		listen      = flag.String("listen", ":7310", "HTTP listen address")
		backend     = flag.String("backend", "sim", "shard backend: sim | mem | osd")
		hosts       = flag.Int("hosts", 3, "sim/mem: failure-domain hosts")
		osdsPerHost = flag.Int("osds-per-host", 2, "sim/mem: OSDs per host")
		deviceMB    = flag.Int64("device-mb", 256, "sim: device capacity in MiB")
		seed        = flag.Int64("seed", 1, "sim: device RNG seed")
		k           = flag.Int("k", 4, "RS data shards")
		m           = flag.Int("m", 2, "RS parity shards")
		chunk       = flag.Int("chunk", 64<<10, "stripe-unit (per-shard chunk) bytes")
		maxInflight = flag.Int("max-inflight", 256, "admission bound; excess requests get 429")
		tenants     = flag.String("tenants", "", "weighted-fair admission: comma-separated name:weight pairs (empty = flat max-inflight)")
		osdURLs     = flag.String("osd-urls", "", "osd backend / smoke: comma-separated ecstored base URLs")
		metaDir     = flag.String("meta-dir", "", "metadata WAL directory (empty = volatile in-memory index)")

		smoke = flag.Bool("smoke", false, "run the smoke driver against -url instead of serving")
		chaos = flag.Bool("chaos", false, "smoke: add the chaos leg (fault injection, hedges, breaker trip)")
		url   = flag.String("url", "http://127.0.0.1:7310", "smoke: gateway base URL")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	if *smoke {
		if err := runSmoke(*url, splitURLs(*osdURLs), *chaos, logger); err != nil {
			logger.Error("smoke failed", "error", err.Error())
			os.Exit(1)
		}
		logger.Info("smoke passed", "gateway", *url)
		return
	}

	cfg := service.DefaultGatewayConfig()
	cfg.K, cfg.M = *k, *m
	cfg.ChunkSize = *chunk
	cfg.MaxInflight = *maxInflight
	if *tenants != "" {
		tc, err := parseTenants(*tenants)
		if err != nil {
			fatal(logger, "tenants", err)
		}
		cfg.Tenants = tc
		logger.Info("weighted-fair admission", "tenants", len(tc), "limit", cfg.MaxInflight)
	}
	cfg.Logger = logger
	cfg.Backend = *backend
	cfg.MetaDir = *metaDir
	cfg.Seed = *seed

	var (
		stores []service.ShardStore
		cmap   *crush.Map
	)
	switch *backend {
	case "sim":
		vc, err := service.NewSimCluster(service.SimClusterConfig{
			Hosts: *hosts, OSDsPerHost: *osdsPerHost, DeviceBytes: *deviceMB << 20, Seed: *seed,
		})
		if err != nil {
			fatal(logger, "sim cluster", err)
		}
		stores, cmap = vc.Stores(), vc.CrushMap()
		cfg.Faults, cfg.Sim = vc, vc
	case "mem":
		cmap = crush.Uniform(*hosts, *osdsPerHost)
		mems := make([]*service.MemStore, cmap.Devices())
		for i := range mems {
			mems[i] = service.NewMemStore(i)
			mems[i].SetHost(cmap.Host(i))
			stores = append(stores, mems[i])
		}
		cfg.Faults = memFaults(mems)
	case "osd":
		urls := splitURLs(*osdURLs)
		if len(urls) == 0 {
			fatal(logger, "osd backend", errors.New("-osd-urls required"))
		}
		// One ecstored daemon per failure domain.
		cmap = crush.Uniform(len(urls), 1)
		for i, u := range urls {
			stores = append(stores, service.NewOSDClient(i, u))
		}
	default:
		fatal(logger, "backend", fmt.Errorf("unknown backend %q", *backend))
	}

	placer, err := service.NewPlacer(cmap, cfg.K+cfg.M)
	if err != nil {
		fatal(logger, "placer", err)
	}
	gw, err := service.NewGateway(cfg, stores, placer)
	if err != nil {
		fatal(logger, "gateway", err)
	}

	logger.Info("ecgate listening", "addr", *listen, "backend", *backend,
		"scheme", fmt.Sprintf("RS(%d,%d)", cfg.K, cfg.M), "osds", len(stores))
	if err := http.ListenAndServe(*listen, gw.Handler()); err != nil {
		fatal(logger, "serve", err)
	}
}

func fatal(logger *slog.Logger, what string, err error) {
	logger.Error(what, "error", err.Error())
	os.Exit(1)
}

// parseTenants turns "gold:3,silver:2,bronze:1" into per-tenant
// weighted-fair admission configs.
func parseTenants(s string) (map[string]qos.TenantConfig, error) {
	out := make(map[string]qos.TenantConfig)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, weight, ok := strings.Cut(pair, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant %q: want name:weight", pair)
		}
		w, err := strconv.ParseFloat(weight, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tenant %q: weight must be a positive number", pair)
		}
		out[name] = qos.TenantConfig{Weight: w}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", s)
	}
	return out, nil
}

func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// memFaults adapts a MemStore fleet to the gateway's FaultInjector.
type memFaults []*service.MemStore

func (f memFaults) FailOSD(id int) error {
	if id < 0 || id >= len(f) {
		return fmt.Errorf("osd %d out of range", id)
	}
	f[id].Fail()
	return nil
}

func (f memFaults) RestoreOSD(id int) error {
	if id < 0 || id >= len(f) {
		return fmt.Errorf("osd %d out of range", id)
	}
	f[id].Restore()
	return nil
}

// runSmoke is the CI smoke driver: object round trip, forced degraded
// read, delete, plus a direct shard round trip against each ecstored URL.
// With chaos set it finishes with the fault-injection leg.
func runSmoke(gateURL string, osdURLs []string, chaos bool, logger *slog.Logger) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	gc := service.NewGateClient(gateURL)
	if err := gc.WaitReady(ctx, 30*time.Second); err != nil {
		return err
	}
	st, err := gc.Status(ctx)
	if err != nil {
		return fmt.Errorf("status: %w", err)
	}
	logger.Info("gateway up", "scheme", st.Scheme, "backend", st.Backend, "osds", st.OSDs)

	// Deterministic payload spanning several stripes plus a ragged tail.
	payload := make([]byte, 1<<20+12345)
	rand.New(rand.NewSource(42)).Read(payload)
	const key = "smoke/obj-1"

	oi, err := gc.PutObject(ctx, key, payload)
	if err != nil {
		return fmt.Errorf("put: %w", err)
	}
	if oi.Written != oi.Shards {
		return fmt.Errorf("put landed %d of %d shards", oi.Written, oi.Shards)
	}
	logger.Info("put ok", "key", key, "size", oi.Size, "osds", fmt.Sprint(oi.OSDs))

	got, degraded, err := gc.GetObject(ctx, key)
	if err != nil {
		return fmt.Errorf("get: %w", err)
	}
	if degraded {
		return errors.New("healthy get reported degraded")
	}
	if !bytes.Equal(got, payload) {
		return errors.New("healthy get: payload mismatch")
	}

	// Kill the OSD holding data shard 0 and read through reconstruction.
	victim := oi.OSDs[0]
	if err := gc.FailOSD(ctx, victim); err != nil {
		return fmt.Errorf("fail osd %d: %w", victim, err)
	}
	got, degraded, err = gc.GetObject(ctx, key)
	if err != nil {
		return fmt.Errorf("degraded get: %w", err)
	}
	if !degraded {
		return errors.New("get after OSD kill not reported degraded")
	}
	if !bytes.Equal(got, payload) {
		return errors.New("degraded get: payload mismatch")
	}
	logger.Info("degraded get ok", "victim_osd", victim)

	metrics, err := gc.MetricsText(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, series := range []string{"ecgate_degraded_reads_total", "ecgate_reconstructed_shards_total"} {
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("metrics missing %s", series)
		}
	}

	if err := gc.RestoreOSD(ctx, victim); err != nil {
		return fmt.Errorf("restore osd %d: %w", victim, err)
	}
	if err := gc.DeleteObject(ctx, key); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	if _, _, err := gc.GetObject(ctx, key); !errors.Is(err, service.ErrNotFound) {
		return fmt.Errorf("get after delete: want not-found, got %v", err)
	}
	logger.Info("object lifecycle ok")

	// Direct shard round trip against each ecstored daemon.
	for i, u := range osdURLs {
		oc := service.NewOSDClient(i, u)
		shard := []byte(fmt.Sprintf("shard-payload-%d", i))
		if err := oc.Put(ctx, "smoke/shard", i, shard); err != nil {
			return fmt.Errorf("osd %s put: %w", u, err)
		}
		back, err := oc.Get(ctx, "smoke/shard", i)
		if err != nil {
			return fmt.Errorf("osd %s get: %w", u, err)
		}
		if !bytes.Equal(back, shard) {
			return fmt.Errorf("osd %s shard mismatch", u)
		}
		stat, err := oc.Stat(ctx)
		if err != nil {
			return fmt.Errorf("osd %s stat: %w", u, err)
		}
		if stat.Shards < 1 {
			return fmt.Errorf("osd %s stat reports %d shards", u, stat.Shards)
		}
		if err := oc.Delete(ctx, "smoke/shard", i); err != nil {
			return fmt.Errorf("osd %s delete: %w", u, err)
		}
		if _, err := oc.Get(ctx, "smoke/shard", i); !errors.Is(err, service.ErrNotFound) {
			return fmt.Errorf("osd %s get after delete: want not-found, got %v", u, err)
		}
		logger.Info("ecstored round trip ok", "url", u, "backend", stat.Backend)
	}

	if chaos {
		if err := runChaos(ctx, gc, logger); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
	}
	return nil
}

// runChaos drives the gateway through injected shard faults: transient
// errors and stalls on two OSDs must stay invisible to clients (every GET
// byte-identical, zero object-op failures), a partition must trip that
// OSD's breaker, and the retry/hedge/breaker counters must move.
func runChaos(ctx context.Context, gc *service.GateClient, logger *slog.Logger) error {
	st, err := gc.Status(ctx)
	if err != nil {
		return fmt.Errorf("status: %w", err)
	}
	if st.OSDs < 3 {
		return fmt.Errorf("need >=3 OSDs for chaos, have %d", st.OSDs)
	}

	// 10% transient errors + stalls longer than the hedge delay on two OSDs.
	flaky := service.FaultSpec{ErrorProb: 0.1, LatencyMult: 5, StuckProb: 0.05, StuckMs: 400}
	for _, osd := range []int{0, 1} {
		if err := gc.SetFault(ctx, osd, flaky); err != nil {
			return fmt.Errorf("set fault on osd %d: %w", osd, err)
		}
	}
	logger.Info("chaos faults armed", "osds", "0,1",
		"error_prob", flaky.ErrorProb, "stuck_ms", flaky.StuckMs)

	rng := rand.New(rand.NewSource(7))
	payloads := make(map[string][]byte, 200)
	for i := 0; i < 200; i++ {
		payload := make([]byte, 4096+rng.Intn(8192))
		rng.Read(payload)
		key := fmt.Sprintf("chaos/obj-%d", i)
		payloads[key] = payload
		if _, err := gc.PutObject(ctx, key, payload); err != nil {
			return fmt.Errorf("put %s under faults: %w", key, err)
		}
		got, _, err := gc.GetObject(ctx, key)
		if err != nil {
			return fmt.Errorf("get %s under faults: %w", key, err)
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("get %s under faults: payload mismatch", key)
		}
	}
	logger.Info("chaos cycles ok", "cycles", 200)

	// Full partition on OSD 0: the breaker must trip and reads must keep
	// succeeding through parity, byte-identical.
	if err := gc.SetFault(ctx, 0, service.FaultSpec{Partition: true}); err != nil {
		return fmt.Errorf("partition osd 0: %w", err)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("chaos/obj-%d", i)
		got, _, err := gc.GetObject(ctx, key)
		if err != nil {
			return fmt.Errorf("get %s under partition: %w", key, err)
		}
		if !bytes.Equal(got, payloads[key]) {
			return fmt.Errorf("get %s under partition: payload mismatch", key)
		}
	}
	st, err = gc.Status(ctx)
	if err != nil {
		return fmt.Errorf("status after partition: %w", err)
	}
	if st.BreakersOpen == 0 {
		return fmt.Errorf("partition did not trip a breaker")
	}
	if st.Retries == 0 {
		return fmt.Errorf("injected faults produced zero shard retries")
	}
	logger.Info("breaker tripped", "open", st.BreakersOpen,
		"retries", st.Retries, "hedged", st.HedgedReads)

	// Clear every fault; after the cooldown the breaker must close again.
	for _, osd := range []int{0, 1} {
		if err := gc.SetFault(ctx, osd, service.FaultSpec{}); err != nil {
			return fmt.Errorf("clear fault on osd %d: %w", osd, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, err := gc.GetObject(ctx, "chaos/obj-0"); err != nil {
			return fmt.Errorf("get after fault clear: %w", err)
		}
		st, err = gc.Status(ctx)
		if err != nil {
			return err
		}
		if st.BreakersOpen == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("breaker still open after faults cleared")
		}
		time.Sleep(200 * time.Millisecond)
	}

	metrics, err := gc.MetricsText(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, series := range []string{
		"ecgate_shard_retries_total", "ecgate_breaker_trips_total", "ecgate_breaker_state",
	} {
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("metrics missing %s", series)
		}
	}

	// Leave the namespace clean for any following smoke steps.
	for i := 0; i < 200; i++ {
		if err := gc.DeleteObject(ctx, fmt.Sprintf("chaos/obj-%d", i)); err != nil {
			return fmt.Errorf("chaos cleanup delete: %w", err)
		}
	}
	logger.Info("chaos leg ok")
	return nil
}
