// Command tracegen regenerates the paper's released trace corpus: 54
// block-level traces collected from the storage cluster (§I). The corpus
// composition is:
//
//   - 36 data traces: 3 schemes × 3 block sizes (4K/16K/128K) × 4 workloads
//     (seq/rand × read/write), capturing object-data device I/O;
//   - 18 metadata traces: for the 18 write workloads, the I/O landing in the
//     OSD stores' WAL+metadata regions (the paper's separate metadata pool).
//
// Each trace is a text file (see internal/trace for the format).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ecarray/internal/core"
	"ecarray/internal/sim"
	"ecarray/internal/trace"
	"ecarray/internal/workload"
)

func main() {
	outDir := flag.String("out", "traces", "output directory")
	duration := flag.Duration("duration", time.Second, "workload duration per trace")
	imageGiB := flag.Int64("image", 2, "image size in GiB")
	qd := flag.Int("qd", 64, "queue depth")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	schemes := []struct {
		name    string
		profile core.Profile
	}{
		{"3rep", core.ProfileReplicated(3)},
		{"rs6_3", core.ProfileEC(6, 3)},
		{"rs10_4", core.ProfileEC(10, 4)},
	}
	blockSizes := []int64{4 << 10, 16 << 10, 128 << 10}
	patterns := []workload.Pattern{workload.Sequential, workload.Random}
	ops := []workload.Op{workload.Read, workload.Write}

	count := 0
	for _, sc := range schemes {
		for _, bs := range blockSizes {
			for _, pat := range patterns {
				for _, op := range ops {
					n, err := genTrace(*outDir, sc.name, sc.profile, bs, pat, op, *duration, *imageGiB<<30, *qd)
					if err != nil {
						fatal(err)
					}
					count += n
				}
			}
		}
	}
	fmt.Printf("wrote %d traces to %s\n", count, *outDir)
}

func genTrace(dir, scheme string, profile core.Profile, bs int64,
	pat workload.Pattern, op workload.Op, duration time.Duration, imageSize int64, qd int) (int, error) {
	cfg := core.DefaultConfig()
	cfg.DeviceCapacity = maxI64(2<<30, imageSize*6/24)
	cfg.PGsPerPool = 256
	e := sim.NewEngine()
	c, err := core.New(e, cfg)
	if err != nil {
		return 0, err
	}
	if _, err := c.CreatePool("data", profile); err != nil {
		return 0, err
	}
	img, err := c.CreateImage("data", "trace", imageSize)
	if err != nil {
		return 0, err
	}
	if op == workload.Read {
		img.Prefill()
	}

	rec := trace.NewRecorder(e)
	rec.SetMeta("scheme", profile.String())
	rec.SetMeta("workload", fmt.Sprintf("%s%s", pat, op))
	rec.SetMeta("bs", fmt.Sprint(bs))
	rec.SetMeta("qd", fmt.Sprint(qd))
	rec.SetMeta("image_bytes", fmt.Sprint(imageSize))
	rec.SetMeta("source", "ecarray simulated reproduction of IISWC'17 camelab traces")
	rec.Attach(c)

	if _, err := workload.Run(c, img, workload.Job{
		Name: "trace", Op: op, Pattern: pat, BlockSize: bs,
		QueueDepth: qd, Duration: duration, Seed: 7,
	}); err != nil {
		return 0, err
	}
	c.Engine().Drain()

	base := fmt.Sprintf("%s_%s%s_bs%dk", scheme, pat, op, bs>>10)
	// The store keeps WAL+metadata in the first 2×WALRegion bytes of every
	// device: that region's I/O is the metadata-pool trace.
	metaEvents, dataEvents := rec.FilterRegion(2 * cfg.Store.WALRegion)

	written := 0
	if err := writeTrace(filepath.Join(dir, base+"_data.trace"), rec, dataEvents); err != nil {
		return written, err
	}
	written++
	if op == workload.Write {
		if err := writeTrace(filepath.Join(dir, base+"_meta.trace"), rec, metaEvents); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

func writeTrace(path string, rec *trace.Recorder, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := rec.WriteEvents(f, events); err != nil {
		return err
	}
	s := trace.Summarize(events)
	fmt.Printf("%-44s %8d events, %6.1f MiB read, %6.1f MiB written\n",
		filepath.Base(path), s.Events,
		float64(s.ReadBytes)/(1<<20), float64(s.WriteBytes)/(1<<20))
	return f.Close()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
